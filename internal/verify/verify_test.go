package verify

import (
	"strings"
	"testing"

	"warp/internal/hostgen"
	"warp/internal/mcode"
	"warp/internal/w2"
)

// Hand-built microprograms, one per invariant: each test constructs the
// smallest program that trips (or satisfies) one proposition, so every
// diagnostic path is pinned independently of the compiler.

func recvOp(r mcode.Reg) *mcode.IOOp {
	return &mcode.IOOp{Recv: true, Dir: w2.DirL, Chan: w2.ChanX, Reg: r}
}

func sendOp(r mcode.Reg) *mcode.IOOp {
	return &mcode.IOOp{Recv: false, Dir: w2.DirR, Chan: w2.ChanX, Reg: r}
}

func straight(instrs ...*mcode.Instr) *mcode.Straight {
	return &mcode.Straight{Instrs: instrs}
}

// program wraps cell items into a full verifier input with a host
// program covering nIn receives and nOut sends on channel X.
func program(nIn, nOut int, items ...mcode.CodeItem) Program {
	return Program{
		Cells: 2,
		Cell:  &mcode.CellProgram{Items: items},
		IU:    &mcode.IUProgram{},
		Host: &hostgen.Program{
			In:  map[w2.Channel][]hostgen.Word{w2.ChanX: make([]hostgen.Word, nIn)},
			Out: map[w2.Channel][]int{w2.ChanX: make([]int, nOut)},
		},
		Skew: 1,
		Lead: 1,
	}
}

// expect runs the verifier and asserts the given invariant appears
// among the diagnostics.
func expect(t *testing.T, p Program, inv Invariant) *Error {
	t.Helper()
	_, err := Verify(p)
	if err == nil {
		t.Fatalf("verifier accepted; want a %s violation", inv)
	}
	verr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error is %T, want *verify.Error", err)
	}
	for _, d := range verr.Diags {
		if d.Invariant == inv {
			return verr
		}
	}
	t.Fatalf("no %s diagnostic; got: %v", inv, verr)
	return nil
}

func TestAcceptsMinimalProgram(t *testing.T) {
	// recv r1; send r1 — balanced, covered by skew 1, no hazards.
	p := program(1, 1,
		straight(
			&mcode.Instr{IO: []*mcode.IOOp{recvOp(1)}},
			&mcode.Instr{IO: []*mcode.IOOp{sendOp(1)}},
		),
	)
	rep, err := Verify(p)
	if err != nil {
		t.Fatalf("verifier rejected a correct program: %v", err)
	}
	if rep.Sends[w2.ChanX] != 1 || rep.Recvs[w2.ChanX] != 1 {
		t.Errorf("counts: sends=%d recvs=%d, want 1/1", rep.Sends[w2.ChanX], rep.Recvs[w2.ChanX])
	}
	if rep.Data[w2.ChanX].Method != "exact" || rep.Data[w2.ChanX].Max != 1 {
		t.Errorf("X occupancy = %+v, want exact max 1", rep.Data[w2.ChanX])
	}
	if rep.Checked == 0 {
		t.Error("no propositions recorded as checked")
	}
}

func TestStructureBadRegister(t *testing.T) {
	p := program(1, 0, straight(&mcode.Instr{IO: []*mcode.IOOp{recvOp(mcode.NumRegs + 3)}}))
	expect(t, p, InvStructure)
}

func TestStructureLeftwardSend(t *testing.T) {
	bad := &mcode.IOOp{Recv: false, Dir: w2.DirL, Chan: w2.ChanX, Reg: 1}
	p := program(0, 1, straight(&mcode.Instr{IO: []*mcode.IOOp{bad}}))
	expect(t, p, InvStructure)
}

func TestDefBeforeUse(t *testing.T) {
	// fadd r2 <- r1,r1 issues at cycle 0 and lands at cycle 5; the send
	// reads r2 at cycle 1, racing the register's first definition.
	p := program(0, 1,
		straight(
			&mcode.Instr{Add: &mcode.AluOp{Code: mcode.Fadd, Dst: 2, Src: [3]mcode.Reg{1, 1}}},
			&mcode.Instr{IO: []*mcode.IOOp{sendOp(2)}},
		),
	)
	expect(t, p, InvDefBeforeUse)
}

func TestFPULatencyHazard(t *testing.T) {
	// r2 is first defined by a literal (lands cycle 1), then redefined
	// by an FPU op at cycle 1 (lands cycle 6); the read at cycle 2 races
	// the redefinition — an FPU-latency hazard, not def-before-use.
	p := program(0, 1,
		straight(
			&mcode.Instr{Lit: &mcode.LitOp{Dst: 2, Value: 1}},
			&mcode.Instr{Add: &mcode.AluOp{Code: mcode.Fadd, Dst: 2, Src: [3]mcode.Reg{2, 2}}},
			&mcode.Instr{IO: []*mcode.IOOp{sendOp(2)}},
		),
	)
	verr := expect(t, p, InvFPULatency)
	for _, d := range verr.Diags {
		if d.Invariant == InvDefBeforeUse {
			t.Errorf("redefinition race misclassified as def-before-use: %v", d)
		}
	}
}

func TestImplicitZeroReadAccepted(t *testing.T) {
	// Sending a never-written register is defined behavior: the machine
	// clears the register file at start.  Single cell, so the send-only
	// stream has no inter-cell queue to balance.
	p := program(0, 1, straight(&mcode.Instr{IO: []*mcode.IOOp{sendOp(7)}}))
	p.Cells = 1
	if _, err := Verify(p); err != nil {
		t.Fatalf("read of an implicitly-zero register rejected: %v", err)
	}
}

func TestQueueBalance(t *testing.T) {
	// Two sends, one receive: the inter-cell queue gains a word per cell
	// pass and can never balance.
	p := program(1, 2,
		straight(
			&mcode.Instr{IO: []*mcode.IOOp{recvOp(1)}},
			&mcode.Instr{IO: []*mcode.IOOp{sendOp(1)}},
			&mcode.Instr{IO: []*mcode.IOOp{sendOp(1)}},
		),
	)
	expect(t, p, InvQueueBalance)
}

func TestSkewTooSmall(t *testing.T) {
	// The receive runs at cycle 0 but the matching upstream send only at
	// cycle 2; skew 1 delivers the word one cycle late.
	p := program(1, 1,
		straight(
			&mcode.Instr{IO: []*mcode.IOOp{recvOp(1)}},
			&mcode.Instr{},
			&mcode.Instr{IO: []*mcode.IOOp{sendOp(1)}},
		),
	)
	expect(t, p, InvSkew)
}

func TestQueueOverflow(t *testing.T) {
	// 200 sends before the first receive: occupancy crosses the 128-word
	// hardware queue depth.
	var instrs []*mcode.Instr
	for i := 0; i < 200; i++ {
		instrs = append(instrs, &mcode.Instr{IO: []*mcode.IOOp{sendOp(1)}})
	}
	for i := 0; i < 200; i++ {
		instrs = append(instrs, &mcode.Instr{IO: []*mcode.IOOp{recvOp(1)}})
	}
	p := program(200, 200, straight(instrs...))
	verr := expect(t, p, InvQueueOverflow)
	found := false
	for _, d := range verr.Diags {
		// The diagnostic reports the peak (200) and where the depth was
		// first crossed (send 128).
		if d.Invariant == InvQueueOverflow && strings.Contains(d.Detail, "200") && strings.Contains(d.Detail, "128") {
			found = true
		}
	}
	if !found {
		t.Errorf("overflow diagnostic does not report peak and crossing point: %v", verr)
	}
}

func TestExactOccupancyAtBoundary(t *testing.T) {
	// Exactly QueueDepth words in flight is legal: the queue is full,
	// not overflowing.
	var instrs []*mcode.Instr
	for i := 0; i < mcode.QueueDepth; i++ {
		instrs = append(instrs, &mcode.Instr{IO: []*mcode.IOOp{sendOp(1)}})
	}
	for i := 0; i < mcode.QueueDepth; i++ {
		instrs = append(instrs, &mcode.Instr{IO: []*mcode.IOOp{recvOp(1)}})
	}
	p := program(mcode.QueueDepth, mcode.QueueDepth, straight(instrs...))
	rep, err := Verify(p)
	if err != nil {
		t.Fatalf("a full-but-not-overflowing queue was rejected: %v", err)
	}
	if rep.Data[w2.ChanX].Max != mcode.QueueDepth {
		t.Errorf("proven occupancy %d, want exactly %d", rep.Data[w2.ChanX].Max, mcode.QueueDepth)
	}
}

func TestHostStreamMismatch(t *testing.T) {
	// The cell receives one word; the host feeds two.
	p := program(2, 1,
		straight(
			&mcode.Instr{IO: []*mcode.IOOp{recvOp(1)}},
			&mcode.Instr{IO: []*mcode.IOOp{sendOp(1)}},
		),
	)
	expect(t, p, InvHostStream)
}

func TestAddrStreamUnreadTable(t *testing.T) {
	// The IU's address table holds a word the program never reads.
	p := program(0, 0, straight(&mcode.Instr{}))
	p.IU.Table = []int64{7}
	expect(t, p, InvAddrStream)
}

func TestAddrStreamMissingAddresses(t *testing.T) {
	// The cell makes a memory reference but the IU emits no address.
	load := &mcode.Instr{}
	load.Mem[0] = &mcode.MemOp{Store: false, Reg: 1}
	p := program(0, 0, straight(load))
	expect(t, p, InvAddrStream)
}

func TestAddrStreamOutOfRange(t *testing.T) {
	// The IU emits an address beyond the 4K-word cell memory.
	load := &mcode.Instr{}
	load.Mem[0] = &mcode.MemOp{Store: false, Reg: 1}
	p := program(0, 0, straight(load))
	out := &mcode.IUInstr{Imm: &mcode.IUImm{Dst: 1, Value: mcode.MemWords + 10}}
	emit := &mcode.IUInstr{}
	emit.Out[0] = &mcode.IUOut{Src: 1}
	p.IU.Items = []mcode.IUItem{&mcode.IUStraight{Instrs: []*mcode.IUInstr{out, emit}}}
	expect(t, p, InvAddrStream)
}

func TestSigStreamMissingSignals(t *testing.T) {
	// The cell sequencer crosses two loop boundaries; the IU is silent.
	body := straight(&mcode.Instr{})
	p := program(0, 0, &mcode.LoopItem{ID: 1, Trips: 2, Body: []mcode.CodeItem{body}})
	expect(t, p, InvSigStream)
}

func TestSigStreamAccepted(t *testing.T) {
	// A two-trip cell loop matched by an IU loop emitting the dynamic
	// continue/stop signal per iteration.
	body := straight(&mcode.Instr{})
	cellLoop := &mcode.LoopItem{ID: 1, Trips: 2, Body: []mcode.CodeItem{body}}
	sig := &mcode.IUInstr{Sig: &mcode.IUSig{LoopID: 1, M: 1, CellTrips: 2}}
	iuLoop := &mcode.IULoop{ID: 1, Trips: 2, Body: []mcode.IUItem{
		&mcode.IUStraight{Instrs: []*mcode.IUInstr{sig}},
	}}
	p := program(0, 0, cellLoop)
	p.IU.Items = []mcode.IUItem{iuLoop}
	if _, err := Verify(p); err != nil {
		t.Fatalf("matched signal stream rejected: %v", err)
	}
}

func TestSigStreamWrongDecision(t *testing.T) {
	// The IU signals "continue" on the final iteration: the cell
	// sequencer would loop forever.
	body := straight(&mcode.Instr{})
	cellLoop := &mcode.LoopItem{ID: 1, Trips: 2, Body: []mcode.CodeItem{body}}
	sig := &mcode.IUInstr{Sig: &mcode.IUSig{LoopID: 1, Static: true, Continue: true}}
	iuLoop := &mcode.IULoop{ID: 1, Trips: 2, Body: []mcode.IUItem{
		&mcode.IUStraight{Instrs: []*mcode.IUInstr{sig}},
	}}
	p := program(0, 0, cellLoop)
	p.IU.Items = []mcode.IUItem{iuLoop}
	expect(t, p, InvSigStream)
}

func TestShapeRejectsMissingPieces(t *testing.T) {
	if _, err := Verify(Program{Cells: 1}); err == nil {
		t.Fatal("nil programs accepted")
	}
	p := program(0, 0, straight(&mcode.Instr{}))
	p.Cells = 0
	if _, err := Verify(p); err == nil {
		t.Fatal("zero-cell array accepted")
	}
	p = program(0, 0, straight(&mcode.Instr{}))
	p.Skew = 0
	if _, err := Verify(p); err == nil {
		t.Fatal("zero skew with two cells accepted")
	}
}

func TestDiagnosticFormatting(t *testing.T) {
	d := Diagnostic{Invariant: InvFPULatency, Cell: 0, Instr: 13, Loop: -1, Detail: "boom"}
	if got := d.String(); !strings.Contains(got, "instr 13") || !strings.Contains(got, "fpu-latency") {
		t.Errorf("diagnostic renders as %q", got)
	}
	e := &Error{Diags: []Diagnostic{d, d}}
	if msg := e.Error(); !strings.Contains(msg, "boom") {
		t.Errorf("error message %q drops the detail", msg)
	}
}

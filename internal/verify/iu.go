package verify

import (
	"fmt"

	"warp/internal/mcode"
)

// iu.go statically executes the IU microprogram.  The IU's arithmetic
// is fully input-independent — immediates, an adder, and a pre-stored
// table — so the complete address and loop-signal streams it will emit,
// with their exact cycles, are computable by emulation.  The emulation
// mirrors the simulator's register semantics: writes issued at cycle t
// land at t+1, applied before the cycle's reads.

// adrEvent is one address the IU pushes onto the Adr path.
type adrEvent struct {
	at    int64
	val   int64
	instr int
}

// sigEvent is one loop-control signal the IU pushes.
type sigEvent struct {
	at    int64
	id    int
	more  bool
	instr int
}

// iuTrace is the full emulated output of the IU program.
type iuTrace struct {
	adr       []adrEvent
	sigs      []sigEvent
	tableRead int
	cycles    int64
}

// indexIU assigns static instruction indices in listing order.
func indexIU(p *mcode.IUProgram) map[*mcode.IUInstr]int {
	idx := map[*mcode.IUInstr]int{}
	n := 0
	var walk func(items []mcode.IUItem)
	walk = func(items []mcode.IUItem) {
		for _, it := range items {
			switch it := it.(type) {
			case *mcode.IUStraight:
				for _, in := range it.Instrs {
					idx[in] = n
					n++
				}
			case *mcode.IULoop:
				walk(it.Body)
			}
		}
	}
	walk(p.Items)
	return idx
}

type iuWrite struct {
	reg  mcode.IUReg
	val  int64
	land int64
}

type iuEmu struct {
	regs    [mcode.IUNumRegs]int64
	pending []iuWrite
	t       int64
	limit   int64
	tblPos  int
	table   []int64
	index   map[*mcode.IUInstr]int
	trace   *iuTrace
	col     *collector
}

// emulateIU runs the IU program to completion, collecting the emitted
// streams.  It returns false when the program exceeds limit cycles; the
// trace is then incomplete and must not be used.  Table overreads are
// reported as diagnostics and read as zero so emulation can continue
// and surface further violations.
func emulateIU(p *mcode.IUProgram, limit int64, col *collector) (*iuTrace, bool) {
	e := &iuEmu{
		limit: limit,
		table: p.Table,
		index: indexIU(p),
		trace: &iuTrace{},
		col:   col,
	}
	if !e.run(p.Items, 0) {
		return nil, false
	}
	e.trace.cycles = e.t
	e.trace.tableRead = e.tblPos
	return e.trace, true
}

func (e *iuEmu) run(items []mcode.IUItem, iter int64) bool {
	for _, it := range items {
		switch it := it.(type) {
		case *mcode.IUStraight:
			for _, in := range it.Instrs {
				if e.t >= e.limit {
					return false
				}
				e.step(in, iter)
			}
		case *mcode.IULoop:
			for k := int64(0); k < it.Trips; k++ {
				if !e.run(it.Body, k) {
					return false
				}
			}
		}
	}
	return true
}

// step executes one IU cycle, mirroring sim.stepIU: pending register
// writes landing this cycle apply first, outputs read the updated
// registers, and the adder/immediate results land next cycle.
func (e *iuEmu) step(in *mcode.IUInstr, iter int64) {
	kept := e.pending[:0]
	for _, w := range e.pending {
		if w.land <= e.t {
			e.regs[w.reg] = w.val
		} else {
			kept = append(kept, w)
		}
	}
	e.pending = kept

	for _, out := range in.Out {
		if out == nil {
			continue
		}
		var v int64
		if out.FromTable {
			if e.tblPos >= len(e.table) {
				if e.tblPos == len(e.table) { // report the first overread once
					e.col.add(Diagnostic{
						Invariant: InvAddrStream, Cell: -1, Instr: e.index[in], Loop: -1,
						Detail: fmt.Sprintf("IU reads past the end of its %d-entry address table at cycle %d", len(e.table), e.t),
					})
				}
				e.tblPos++
			} else {
				v = e.table[e.tblPos]
				e.tblPos++
			}
		} else {
			v = e.regs[out.Src]
		}
		e.trace.adr = append(e.trace.adr, adrEvent{at: e.t, val: v, instr: e.index[in]})
	}
	if in.Sig != nil {
		more := in.Sig.Continue
		if !in.Sig.Static {
			more = iter*in.Sig.M+in.Sig.Copy < in.Sig.CellTrips-1
		}
		e.trace.sigs = append(e.trace.sigs, sigEvent{at: e.t, id: in.Sig.LoopID, more: more, instr: e.index[in]})
	}
	if in.Imm != nil {
		e.pending = append(e.pending, iuWrite{reg: in.Imm.Dst, val: in.Imm.Value, land: e.t + 1})
	}
	if in.Alu != nil {
		a := e.regs[in.Alu.A]
		b := in.Alu.ImmVal
		if !in.Alu.BIsImm {
			b = e.regs[in.Alu.B]
		}
		v := a + b
		if in.Alu.Sub {
			v = a - b
		}
		e.pending = append(e.pending, iuWrite{reg: in.Alu.Dst, val: v, land: e.t + 1})
	}
	e.t++
}

package verify

import (
	"fmt"

	"warp/internal/mcode"
)

// hazard.go proves the absence of register hazards by abstract
// interpretation over write times: for every register it tracks the
// issue cycle and latency of the last write, and checks that every read
// happens only after that write has landed (issue + latency ≤ read
// cycle).  FPU results take FPULatency (5) cycles; moves, literals,
// loads and receives land the next cycle.  A read of a register with a
// write still in flight would observe the stale previous value — with
// modulo variable expansion in the scheduler (registers renamed per
// overlapped copy), any such read is a scheduling bug, not an intended
// old-value read.  A read racing the register's first-ever write is
// classified def-before-use; racing a redefinition is an FPU-latency
// hazard.
//
// Reading a register that is never written beforehand is NOT a
// violation: the machine clears the register file at start, and the
// compiler relies on that for source variables read before assignment
// (both the simulator and the reference interpreter define them as 0).
//
// Loops are not unrolled: the first two iterations are walked at
// absolute cycles, then the clock and the in-loop write times jump by
// (trips−2)·bodyLen.  This is exhaustive because iteration k ≥ 1 is a
// cycle-exact translate of iteration 1 — every write in iteration k−1
// recurs in iteration k at the same relative distance, so read/write
// distances are constant from iteration 1 on, and registers last
// written before the loop only age (grow safer) with k.

type regState struct {
	written bool
	first   bool // the in-state write is the register's first ever
	issue   int64
	lat     int64
}

type hazardChecker struct {
	regs [mcode.NumRegs]regState
	col  *collector
	idx  map[*mcode.Instr]int
}

// checkHazards runs the analysis over the whole cell program.  All
// cells run the same program, so one pass covers the array; reported
// diagnostics use cell -1.
func checkHazards(p *mcode.CellProgram, idx map[*mcode.Instr]int, col *collector) {
	h := &hazardChecker{col: col, idx: idx}
	h.walkItems(p.Items, 0)
}

func (h *hazardChecker) walkItems(items []mcode.CodeItem, t int64) int64 {
	for _, it := range items {
		switch it := it.(type) {
		case *mcode.Straight:
			for _, in := range it.Instrs {
				h.instr(in, t)
				t++
			}
		case *mcode.LoopItem:
			bodyLen := it.Cycles() / max64(it.Trips, 1)
			iters := min64(it.Trips, 2)
			for k := int64(0); k < iters; k++ {
				t = h.walkItems(it.Body, t)
			}
			if it.Trips > 2 {
				shift := (it.Trips - 2) * bodyLen
				// Writes from the walked iteration 1 recur every
				// iteration; their last occurrence is shift cycles later.
				iter1Start := t - bodyLen
				for r := range h.regs {
					if h.regs[r].written && h.regs[r].issue >= iter1Start {
						h.regs[r].issue += shift
					}
				}
				t += shift
			}
		}
	}
	return t
}

// instr checks one microinstruction at absolute cycle t: reads against
// the current write states, then the cycle's own writes.
func (h *hazardChecker) instr(in *mcode.Instr, t int64) {
	read := func(r mcode.Reg, what string) {
		st := h.regs[r]
		if !st.written {
			// Implicit zero initialization: defined, not a violation.
			return
		}
		if st.issue < t && st.issue+st.lat > t {
			inv, kind := InvFPULatency, "producing"
			if st.first {
				inv, kind = InvDefBeforeUse, "first defining"
			}
			h.col.add(Diagnostic{
				Invariant: inv, Cell: -1, Instr: h.idx[in], Loop: -1,
				Detail: fmt.Sprintf("%s reads %s at cycle %d, but the %s write (cycle %d, latency %d) lands only at cycle %d",
					what, r, t, kind, st.issue, st.lat, st.issue+st.lat),
			})
		}
	}
	readAlu := func(op *mcode.AluOp, field string) {
		if op == nil {
			return
		}
		for i := 0; i < op.Code.NumOperands(); i++ {
			read(op.Src[i], field+" "+op.Code.String())
		}
	}
	readAlu(in.Add, "add")
	readAlu(in.Mul, "mul")
	readAlu(in.Mov, "mov")
	for _, m := range in.Mem {
		if m != nil && m.Store {
			read(m.Reg, "store")
		}
	}
	for _, io := range in.IO {
		if !io.Recv {
			read(io.Reg, "send")
		}
	}

	type write struct {
		reg mcode.Reg
		lat int64
	}
	var writes []write
	if in.Add != nil {
		writes = append(writes, write{in.Add.Dst, in.Add.Code.Latency()})
	}
	if in.Mul != nil {
		writes = append(writes, write{in.Mul.Dst, in.Mul.Code.Latency()})
	}
	if in.Mov != nil {
		writes = append(writes, write{in.Mov.Dst, in.Mov.Code.Latency()})
	}
	for _, m := range in.Mem {
		if m != nil && !m.Store {
			writes = append(writes, write{m.Reg, 1})
		}
	}
	for _, io := range in.IO {
		if io.Recv {
			writes = append(writes, write{io.Reg, 1})
		}
	}
	if in.Lit != nil {
		writes = append(writes, write{in.Lit.Dst, 1})
	}
	seen := map[mcode.Reg]bool{}
	for _, w := range writes {
		if seen[w.reg] {
			h.col.add(Diagnostic{
				Invariant: InvStructure, Cell: -1, Instr: h.idx[in], Loop: -1,
				Detail: fmt.Sprintf("two fields write %s in the same cycle (%d)", w.reg, t),
			})
		}
		seen[w.reg] = true
		if st := h.regs[w.reg]; st.written && st.issue < t && st.issue+st.lat > t+w.lat {
			// An earlier in-flight result would land after (and clobber)
			// this newer value — a write-ordering inversion.
			h.col.add(Diagnostic{
				Invariant: InvFPULatency, Cell: -1, Instr: h.idx[in], Loop: -1,
				Detail: fmt.Sprintf("write to %s at cycle %d lands before the still-in-flight write of cycle %d (latency %d)",
					w.reg, t, st.issue, st.lat),
			})
		}
		h.regs[w.reg] = regState{written: true, first: !h.regs[w.reg].written, issue: t, lat: w.lat}
	}
}

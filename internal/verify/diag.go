package verify

import (
	"fmt"
	"strings"
)

// Invariant names one machine guarantee the verifier discharges.  Every
// Diagnostic carries the invariant it violates, so callers (w2c, warpd)
// can report failures structurally.
type Invariant string

// The verified invariants.  DESIGN.md ("Verified invariants") maps each
// to the paper's guarantee it re-states.
const (
	// InvStructure: the microcode violates a structural machine
	// constraint (register range, field usage, loop shape, channel
	// direction) before any timing question arises.
	InvStructure Invariant = "structure"
	// InvQueueBalance: a channel's dynamic send and receive counts
	// differ, so the inter-cell queue cannot drain.
	InvQueueBalance Invariant = "queue-balance"
	// InvSkew: a receive is not covered by the compiled skew — it would
	// execute before the matching send of the upstream cell (queue
	// underflow, §6.2.1).
	InvSkew Invariant = "skew-coverage"
	// InvQueueOverflow: the proven peak queue occupancy exceeds the
	// 128-word hardware queue (§6.2.2).
	InvQueueOverflow Invariant = "queue-overflow"
	// InvFPULatency: a register is read before its producing FPU
	// result has traversed the 5-stage pipeline.
	InvFPULatency Invariant = "fpu-latency"
	// InvDefBeforeUse: a register is read before any write defines it.
	InvDefBeforeUse Invariant = "def-before-use"
	// InvAddrStream: the IU address stream does not match the cells'
	// memory-reference consumption (count, timing, or an address
	// outside the 4K-word cell memory).
	InvAddrStream Invariant = "addr-stream"
	// InvSigStream: the IU loop-control signal stream does not match
	// the boundaries the cell sequencer crosses.
	InvSigStream Invariant = "sig-stream"
	// InvHostStream: the host I/O programs do not cover the boundary
	// cells' queue traffic word for word.
	InvHostStream Invariant = "host-stream"
	// InvUnproven: the program is too large for the exact analysis and
	// the symbolic bounds could not discharge the obligation; the
	// program is rejected as unprovable, not as wrong.
	InvUnproven Invariant = "unproven"
)

// Diagnostic is one verification failure, located as precisely as the
// failing invariant allows.
type Diagnostic struct {
	Invariant Invariant `json:"invariant"`
	// Cell is the cell index the violation manifests on (the consuming
	// cell for queue invariants), or -1 when it concerns the IU or the
	// whole array.
	Cell int `json:"cell"`
	// Instr is the static microinstruction index in listing order
	// (cell program for cell-side invariants, IU program for IU-side),
	// or -1 when no single instruction is at fault.
	Instr int `json:"instr"`
	// Loop is the loop ID involved, or -1.
	Loop int `json:"loop"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail"`
}

func (d Diagnostic) String() string {
	var loc []string
	if d.Cell >= 0 {
		loc = append(loc, fmt.Sprintf("cell %d", d.Cell))
	}
	if d.Instr >= 0 {
		loc = append(loc, fmt.Sprintf("instr %d", d.Instr))
	}
	if d.Loop >= 0 {
		loc = append(loc, fmt.Sprintf("loop L%d", d.Loop))
	}
	where := strings.Join(loc, " ")
	if where != "" {
		where += " "
	}
	return fmt.Sprintf("%s[%s]: %s", where, d.Invariant, d.Detail)
}

// Error aggregates every diagnostic of one verification run: the
// verifier checks all invariants rather than stopping at the first
// violation, so one rejection names every broken proposition.
type Error struct {
	Diags []Diagnostic
}

func (e *Error) Error() string {
	if len(e.Diags) == 1 {
		return "verify: " + e.Diags[0].String()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "verify: %d invariant violations:", len(e.Diags))
	for _, d := range e.Diags {
		sb.WriteString("\n  ")
		sb.WriteString(d.String())
	}
	return sb.String()
}

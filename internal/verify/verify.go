// Package verify is a whole-program static analyzer for compiled Warp
// microcode: it re-derives, from the microinstructions alone, the
// cycle-level contracts the compiler claims to establish by
// construction, and proves them without running the simulator.
//
// The machine has no flow control between cells — correctness rests on
// compile-time guarantees (§6.2 of the paper).  The propositions
// checked here, each mapped to its diagnostic Invariant:
//
//   - queue safety: every inter-cell queue's occupancy stays within
//     [0, QueueDepth] for the program's full run, proven by symbolic
//     per-loop send/receive counting (any trip count) and, when the
//     stream is small enough, an exact event sweep;
//   - skew coverage: every receive of cell k is covered by the compiled
//     skew relative to the matching send of cell k−1;
//   - FPU result latency: no register read before its producer's
//     5-cycle latency elapses, and no use before definition;
//   - IU streams: the emulated IU address stream matches the cells'
//     memory-reference consumption in count, timing and range, and the
//     loop-control signal stream matches the cell sequencer's boundary
//     crossings; the host I/O programs cover the boundary cells' queue
//     traffic word for word.
//
// Verification is conservative: a program too large for the exact
// analyses whose symbolic bounds cannot discharge an obligation is
// rejected as unprovable (InvUnproven), never accepted unchecked.
package verify

import (
	"fmt"

	"warp/internal/conc"
	"warp/internal/hostgen"
	"warp/internal/mcode"
	"warp/internal/skew"
	"warp/internal/w2"
)

// Analysis effort caps.  Every practical program fits well inside them;
// beyond, the verifier falls back to symbolic bounds or rejects with
// InvUnproven rather than silently accepting.
const (
	// enumEventLimit caps the dynamic events enumerated per stream.
	enumEventLimit = 1 << 22
	// emuCycleLimit caps full-expansion walks (IU emulation, boundary
	// sequence) in cycles.
	emuCycleLimit = 1 << 24
	// maxDiags caps the diagnostics collected before suppression.
	maxDiags = 64
)

// Program is the compiled artifact under verification: exactly what the
// simulator would be handed.
type Program struct {
	Cells int
	Cell  *mcode.CellProgram
	IU    *mcode.IUProgram
	Host  *hostgen.Program
	// Skew is the start-time delay between adjacent cells.
	Skew int64
	// Lead is the delay between the IU's start and cell 0's.
	Lead int64
}

// Occ is one queue's proven peak occupancy and how it was proven.
type Occ struct {
	Max    int64  `json:"max"`
	Method string `json:"method"` // "exact" or "symbolic"
}

// Report summarizes a successful verification.
type Report struct {
	Cells int   `json:"cells"`
	Skew  int64 `json:"skew"`
	Lead  int64 `json:"lead"`
	// Checked counts the propositions discharged.
	Checked int `json:"checked"`
	// Dynamic operation totals, derived symbolically (closed form over
	// trip counts).
	Sends   map[w2.Channel]int64 `json:"sends"`
	Recvs   map[w2.Channel]int64 `json:"recvs"`
	MemRefs int64                `json:"memRefs"`
	Signals int64                `json:"signals"`
	// Proven peak occupancies: per data channel, and the worst Adr/Sig
	// queue in the array.
	Data map[w2.Channel]Occ `json:"data"`
	Adr  Occ                `json:"adr"`
	Sig  Occ                `json:"sig"`
}

// collector accumulates diagnostics with a suppression cap.
type collector struct {
	diags   []Diagnostic
	dropped int
	checked int
}

func (c *collector) add(d Diagnostic) {
	if len(c.diags) >= maxDiags {
		c.dropped++
		return
	}
	c.diags = append(c.diags, d)
}

// ok records one discharged proposition.
func (c *collector) ok() { c.checked++ }

// Verify proves the program's cycle-level invariants, returning a
// report on success and an *Error aggregating every violation found on
// failure.
func Verify(p Program) (*Report, error) {
	return VerifyParallel(p, 1)
}

// VerifyParallel is Verify with its independent invariant groups —
// register hazards, host stream coverage, data queue safety, forwarded
// Adr/Sig queue safety, and the IU stream emulation — proven on up to
// workers concurrent goroutines.  Each group collects diagnostics and
// report fragments privately; the fragments are merged in the serial
// checking order, so the report, every diagnostic, the suppression
// cap's behaviour and the proposition count are identical at any
// worker count.
func VerifyParallel(p Program, workers int) (*Report, error) {
	col := &collector{}
	rep := &Report{
		Cells: p.Cells, Skew: p.Skew, Lead: p.Lead,
		Sends: map[w2.Channel]int64{}, Recvs: map[w2.Channel]int64{},
		Data: map[w2.Channel]Occ{},
	}

	if !checkShape(p, col) {
		return nil, &Error{Diags: col.diags}
	}
	cs := buildCellStreams(p.Cell)
	checkStructure(p, cs, col)
	if len(col.diags) > 0 {
		// The deeper analyses assume structural well-formedness (register
		// numbers in range, positive trip counts, ...); running them on a
		// malformed program would be meaningless or unsafe.
		return nil, &Error{Diags: col.diags}
	}

	// The symbolic operation totals are cheap and every group reads
	// them, so they are derived once before the fan-out.
	for _, ch := range []w2.Channel{w2.ChanX, w2.ChanY} {
		s, r := treeCount(cs.data[ch])
		rep.Sends[ch], rep.Recvs[ch] = s, r
	}
	rep.MemRefs, _ = treeCount(cs.mem)
	rep.Signals = countSignals(p.Cell.Items, 1)

	// Independent invariant groups.  Each runs against a shadow report
	// seeded with the shared totals and a private collector; shadows
	// are merged below in this slice's order, which is the serial
	// checking order.
	groups := []struct {
		name string
		run  func(r *Report, c *collector)
	}{
		{"hazards", func(r *Report, c *collector) { checkHazards(p.Cell, cs.index, c); c.ok() }},
		{"host-streams", func(r *Report, c *collector) { checkHostStreams(p, r, c) }},
		{"data-queues", func(r *Report, c *collector) { checkDataQueues(p, cs, r, c) }},
		{"forwarded-streams", func(r *Report, c *collector) { checkForwardedStreams(p, cs, r, c) }},
		{"iu-streams", func(r *Report, c *collector) { checkIUStreams(p, cs, r, c) }},
	}
	shadowRep := make([]*Report, len(groups))
	shadowCol := make([]*collector, len(groups))
	conc.Do(workers, len(groups), func(i int) {
		r := &Report{
			Cells: rep.Cells, Skew: rep.Skew, Lead: rep.Lead,
			Sends: rep.Sends, Recvs: rep.Recvs,
			MemRefs: rep.MemRefs, Signals: rep.Signals,
			Data: map[w2.Channel]Occ{},
		}
		c := &collector{}
		groups[i].run(r, c)
		shadowRep[i], shadowCol[i] = r, c
	})

	// Merge.  Diagnostics concatenate in group order into the shared
	// collector, whose cap replays the serial suppression behaviour: a
	// group collects at most maxDiags privately (anything beyond would
	// have been suppressed serially too), and re-adding through col
	// re-applies the global cap at the same sequence positions.
	for i := range groups {
		for _, d := range shadowCol[i].diags {
			col.add(d)
		}
		col.dropped += shadowCol[i].dropped
		col.checked += shadowCol[i].checked
	}
	// Report fragments: each field has exactly one writing group, except
	// the Adr/Sig occupancies, where the IU-stream group sharpens the
	// forwarded-stream group's result by the serial max-merge rule.
	for ch, occ := range shadowRep[2].Data {
		rep.Data[ch] = occ
	}
	rep.Adr, rep.Sig = shadowRep[3].Adr, shadowRep[3].Sig
	if iu := shadowRep[4]; iu.Adr.Method != "" && (rep.Adr.Method == "" || iu.Adr.Max > rep.Adr.Max) {
		rep.Adr = iu.Adr
	}
	if iu := shadowRep[4]; iu.Sig.Method != "" && (rep.Sig.Method == "" || iu.Sig.Max > rep.Sig.Max) {
		rep.Sig = iu.Sig
	}

	rep.Checked = col.checked
	if col.dropped > 0 {
		col.diags = append(col.diags, Diagnostic{
			Invariant: InvStructure, Cell: -1, Instr: -1, Loop: -1,
			Detail: fmt.Sprintf("%d further diagnostics suppressed", col.dropped),
		})
	}
	if len(col.diags) > 0 {
		return nil, &Error{Diags: col.diags}
	}
	return rep, nil
}

// checkShape validates the inputs are present and the array geometry is
// sane; nothing else can run without it.
func checkShape(p Program, col *collector) bool {
	bad := func(detail string) {
		col.add(Diagnostic{Invariant: InvStructure, Cell: -1, Instr: -1, Loop: -1, Detail: detail})
	}
	if p.Cell == nil || p.IU == nil || p.Host == nil {
		bad("missing cell, IU or host program")
		return false
	}
	if p.Cells < 1 {
		bad(fmt.Sprintf("array of %d cells", p.Cells))
		return false
	}
	if p.Lead < 1 {
		bad(fmt.Sprintf("lead %d: cell 0 must start at least one cycle after the IU (prologue + transfer)", p.Lead))
	}
	if p.Skew < 0 {
		bad(fmt.Sprintf("negative skew %d", p.Skew))
		return false
	}
	if p.Cells > 1 && p.Skew < 1 {
		// Addresses and signals hop one cell per cycle; a zero skew
		// would make a downstream cell consume a word the same cycle
		// the IU emits it, |array| cells away.
		bad(fmt.Sprintf("skew %d with %d cells: systolic forwarding needs skew ≥ 1", p.Skew, p.Cells))
	}
	return true
}

// checkStructure runs the mcode structural validators and the dataflow
// direction rule (rightward only, matching the simulator's wiring).
func checkStructure(p Program, cs *cellStreams, col *collector) {
	if err := mcode.ValidateCell(p.Cell); err != nil {
		col.add(Diagnostic{Invariant: InvStructure, Cell: -1, Instr: -1, Loop: -1,
			Detail: "cell program: " + err.Error()})
	} else {
		col.ok()
	}
	if err := mcode.ValidateIU(p.IU); err != nil {
		col.add(Diagnostic{Invariant: InvStructure, Cell: -1, Instr: -1, Loop: -1,
			Detail: "IU program: " + err.Error()})
	} else {
		col.ok()
	}
	var walk func(items []mcode.CodeItem)
	walk = func(items []mcode.CodeItem) {
		for _, it := range items {
			switch it := it.(type) {
			case *mcode.Straight:
				for _, in := range it.Instrs {
					for _, io := range in.IO {
						if io.Recv && io.Dir != w2.DirL {
							col.add(Diagnostic{Invariant: InvStructure, Cell: -1, Instr: cs.index[in], Loop: -1,
								Detail: "receive from the right: rightward flow only"})
						}
						if !io.Recv && io.Dir != w2.DirR {
							col.add(Diagnostic{Invariant: InvStructure, Cell: -1, Instr: cs.index[in], Loop: -1,
								Detail: "send to the left: rightward flow only"})
						}
					}
				}
			case *mcode.LoopItem:
				walk(it.Body)
			}
		}
	}
	walk(p.Cell.Items)
	col.ok()
}

// countSignals totals the loop boundaries the cell sequencer crosses
// (one control signal popped per boundary).
func countSignals(items []mcode.CodeItem, mult int64) int64 {
	var n int64
	for _, it := range items {
		if l, ok := it.(*mcode.LoopItem); ok {
			n += mult * l.Trips
			n += countSignals(l.Body, mult*l.Trips)
		}
	}
	return n
}

// checkHostStreams verifies the host I/O programs cover the boundary
// cells' traffic exactly: the host must feed cell 0 one word per
// receive and collect one word per send of the last cell.  The host
// input path is the machine's only flow-controlled link (the host
// waits on a full queue), so count equality is the whole obligation.
func checkHostStreams(p Program, rep *Report, col *collector) {
	for _, ch := range []w2.Channel{w2.ChanX, w2.ChanY} {
		if in := int64(len(p.Host.In[ch])); in != rep.Recvs[ch] {
			col.add(Diagnostic{Invariant: InvHostStream, Cell: 0, Instr: -1, Loop: -1,
				Detail: fmt.Sprintf("host feeds %d words on %s but the first cell receives %d", in, ch, rep.Recvs[ch])})
		} else {
			col.ok()
		}
		if out := int64(len(p.Host.Out[ch])); out != rep.Sends[ch] {
			col.add(Diagnostic{Invariant: InvHostStream, Cell: p.Cells - 1, Instr: -1, Loop: -1,
				Detail: fmt.Sprintf("host expects %d words on %s but the last cell sends %d", out, ch, rep.Sends[ch])})
		} else {
			col.ok()
		}
	}
}

// checkDataQueues proves the X and Y inter-cell queues safe.  Every
// cell runs the same program, so one boundary proof covers the array:
// the upstream cell's sends at its cycle s_n feed the queue the
// downstream cell drains with receives at s-cell time r_n + skew.
func checkDataQueues(p Program, cs *cellStreams, rep *Report, col *collector) {
	if p.Cells < 2 {
		return
	}
	for _, ch := range []w2.Channel{w2.ChanX, w2.ChanY} {
		body := cs.data[ch]
		sends, recvs := rep.Sends[ch], rep.Recvs[ch]
		if sends == 0 && recvs == 0 {
			continue
		}
		if sends != recvs {
			col.add(Diagnostic{Invariant: InvQueueBalance, Cell: -1, Instr: -1, Loop: -1,
				Detail: fmt.Sprintf("channel %s: %d sends vs %d receives per cell; the inter-cell queue cannot balance", ch, sends, recvs)})
			continue
		}
		col.ok()

		if sends <= enumEventLimit {
			var pushes, pops []event
			flatten(body, 0, pickSend, &pushes, enumEventLimit)
			flatten(body, 0, pickRecv, &pops, enumEventLimit)
			res := sweep(pushes, pops, 0, p.Skew, mcode.QueueDepth)
			if res.underAt >= 0 {
				col.add(Diagnostic{Invariant: InvSkew, Cell: -1, Instr: res.underInstr, Loop: -1,
					Detail: fmt.Sprintf("channel %s: receive %d executes at upstream cycle %d but the matching send only at cycle %d; skew %d does not cover it",
						ch, res.underAt, res.underPop, res.underPush, p.Skew)})
			} else {
				col.ok()
			}
			if res.overAt >= 0 {
				col.add(Diagnostic{Invariant: InvQueueOverflow, Cell: -1, Instr: res.overInstr, Loop: -1,
					Detail: fmt.Sprintf("channel %s: occupancy reaches %d (> %d) at send %d, cycle %d",
						ch, res.maxOcc, mcode.QueueDepth, res.overAt, res.overPush)})
			} else {
				col.ok()
			}
			rep.Data[ch] = Occ{Max: res.maxOcc, Method: "exact"}
			continue
		}

		// Symbolic path: occupancy bound from per-loop counting, and
		// skew coverage from the paper's pairwise timing-function bound
		// (both independent of trip counts).
		bound := symbolicOccBound(body, p.Skew, 1)
		if bound > mcode.QueueDepth {
			col.add(Diagnostic{Invariant: InvUnproven, Cell: -1, Instr: -1, Loop: -1,
				Detail: fmt.Sprintf("channel %s: symbolic occupancy bound %d exceeds %d and the %d-event stream is too large to enumerate",
					ch, bound, mcode.QueueDepth, sends)})
		} else {
			col.ok()
		}
		sp := skewProg(body, cs.cycles)
		b, _, err := skew.MinSkewBound(sp, sp, skew.BoundTight)
		switch {
		case err != nil:
			col.add(Diagnostic{Invariant: InvUnproven, Cell: -1, Instr: -1, Loop: -1,
				Detail: fmt.Sprintf("channel %s: skew bound failed: %v", ch, err)})
		case b.Cmp(skew.RI(p.Skew)) > 0:
			col.add(Diagnostic{Invariant: InvUnproven, Cell: -1, Instr: -1, Loop: -1,
				Detail: fmt.Sprintf("channel %s: cannot prove skew %d covers every receive (symbolic minimum-skew bound %s) and the stream is too large to enumerate",
					ch, p.Skew, b)})
		default:
			col.ok()
		}
		rep.Data[ch] = Occ{Max: bound, Method: "symbolic"}
	}
}

// checkForwardedStreams proves the inter-cell Adr and Sig queues safe.
// Each cell forwards every address and signal the cycle it consumes it,
// so the downstream queue's pops replay its pushes exactly skew cycles
// later: underflow is impossible (skew ≥ 1 and upstream steps first),
// and peak occupancy is the largest event count in a skew-cycle window.
func checkForwardedStreams(p Program, cs *cellStreams, rep *Report, col *collector) {
	if p.Cells < 2 {
		return
	}
	check := func(name string, times []int64, enumerated bool, total, rate int64, inv Invariant) Occ {
		if total == 0 {
			return Occ{}
		}
		if enumerated {
			occ := maxWindow(times, p.Skew)
			if occ > mcode.QueueDepth {
				col.add(Diagnostic{Invariant: InvQueueOverflow, Cell: -1, Instr: -1, Loop: -1,
					Detail: fmt.Sprintf("%s queue: %d words in one %d-cycle window (> %d)", name, occ, p.Skew, mcode.QueueDepth)})
			} else {
				col.ok()
			}
			return Occ{Max: occ, Method: "exact"}
		}
		bound := symbolicWindowBound(total, p.Skew, rate)
		if bound > mcode.QueueDepth {
			col.add(Diagnostic{Invariant: InvUnproven, Cell: -1, Instr: -1, Loop: -1,
				Detail: fmt.Sprintf("%s queue: symbolic bound %d exceeds %d and the stream is too large to enumerate", name, bound, mcode.QueueDepth)})
		} else {
			col.ok()
		}
		return Occ{Max: bound, Method: "symbolic"}
	}

	var memTimes []int64
	memEnum := rep.MemRefs <= enumEventLimit
	if memEnum {
		var evs []event
		flatten(cs.mem, 0, pickSend, &evs, enumEventLimit)
		memTimes = make([]int64, len(evs))
		for i, e := range evs {
			memTimes[i] = e.at
		}
	}
	rep.Adr = check("Adr", memTimes, memEnum, rep.MemRefs, mcode.MemPorts, InvAddrStream)

	bounds, bEnum := cellBoundaries(p.Cell, emuCycleLimit)
	var bTimes []int64
	if bEnum {
		bTimes = make([]int64, len(bounds))
		for i, b := range bounds {
			bTimes[i] = b.at
		}
	}
	// A cycle can cross at most maxNest boundaries (one per enclosing
	// loop level), which bounds the signal rate.
	rep.Sig = check("Sig", bTimes, bEnum, rep.Signals, int64(cs.maxNest), InvSigStream)
}

// checkIUStreams emulates the IU and verifies its two output streams
// against the cells' consumption: the address stream (count, range,
// arrival-before-use, queue occupancy into cell 0) and the loop-control
// signal stream (exact sequence equality with the sequencer's boundary
// crossings, arrival, occupancy).
func checkIUStreams(p Program, cs *cellStreams, rep *Report, col *collector) {
	trace, ok := emulateIU(p.IU, emuCycleLimit, col)
	if !ok {
		col.add(Diagnostic{Invariant: InvUnproven, Cell: -1, Instr: -1, Loop: -1,
			Detail: fmt.Sprintf("IU program exceeds %d cycles; address and signal streams cannot be verified", int64(emuCycleLimit))})
		return
	}

	// Address table must be consumed exactly.
	if trace.tableRead < len(p.IU.Table) {
		col.add(Diagnostic{Invariant: InvAddrStream, Cell: -1, Instr: -1, Loop: -1,
			Detail: fmt.Sprintf("IU address table has %d entries but the program reads only %d", len(p.IU.Table), trace.tableRead)})
	} else if trace.tableRead == len(p.IU.Table) {
		col.ok()
	}

	// Every emitted address must lie in the cell data memory.
	rangeOK := true
	for _, a := range trace.adr {
		if a.val < 0 || a.val >= mcode.MemWords {
			col.add(Diagnostic{Invariant: InvAddrStream, Cell: -1, Instr: a.instr, Loop: -1,
				Detail: fmt.Sprintf("IU emits address %d at cycle %d, outside the %d-word cell memory", a.val, a.at, mcode.MemWords)})
			rangeOK = false
		}
	}
	if rangeOK {
		col.ok()
	}

	// Address stream vs cell consumption.
	if n := int64(len(trace.adr)); n != rep.MemRefs {
		col.add(Diagnostic{Invariant: InvAddrStream, Cell: -1, Instr: -1, Loop: -1,
			Detail: fmt.Sprintf("IU emits %d addresses but each cell makes %d memory references", n, rep.MemRefs)})
	} else if rep.MemRefs <= enumEventLimit {
		col.ok()
		var pops []event
		flatten(cs.mem, 0, pickSend, &pops, enumEventLimit)
		pushes := make([]event, len(trace.adr))
		for i, a := range trace.adr {
			pushes[i] = event{at: a.at, instr: a.instr}
		}
		res := sweep(pushes, pops, 0, p.Lead, mcode.QueueDepth)
		if res.underAt >= 0 {
			col.add(Diagnostic{Invariant: InvAddrStream, Cell: 0, Instr: res.underInstr, Loop: -1,
				Detail: fmt.Sprintf("memory reference %d pops the Adr queue at cycle %d but the IU emits the address only at cycle %d",
					res.underAt, res.underPop, res.underPush)})
		} else {
			col.ok()
		}
		if res.overAt >= 0 {
			col.add(Diagnostic{Invariant: InvQueueOverflow, Cell: 0, Instr: res.overInstr, Loop: -1,
				Detail: fmt.Sprintf("Adr queue into cell 0 reaches occupancy %d (> %d) at IU cycle %d", res.maxOcc, mcode.QueueDepth, res.overPush)})
		} else {
			col.ok()
		}
		if rep.Adr.Method == "" || res.maxOcc > rep.Adr.Max {
			rep.Adr = Occ{Max: res.maxOcc, Method: "exact"}
		}
	} else {
		col.add(Diagnostic{Invariant: InvUnproven, Cell: -1, Instr: -1, Loop: -1,
			Detail: fmt.Sprintf("%d memory references are too many to enumerate; Adr timing into cell 0 unproven", rep.MemRefs)})
	}

	// Signal stream vs the sequencer's boundary crossings.
	bounds, bEnum := cellBoundaries(p.Cell, emuCycleLimit)
	if !bEnum {
		col.add(Diagnostic{Invariant: InvUnproven, Cell: -1, Instr: -1, Loop: -1,
			Detail: "cell program too large to enumerate loop boundaries; signal stream unproven"})
		return
	}
	if len(trace.sigs) != len(bounds) {
		col.add(Diagnostic{Invariant: InvSigStream, Cell: -1, Instr: -1, Loop: -1,
			Detail: fmt.Sprintf("IU emits %d loop signals but each cell crosses %d loop boundaries", len(trace.sigs), len(bounds))})
		return
	}
	col.ok()
	seqOK := true
	for i, s := range trace.sigs {
		b := bounds[i]
		if s.id != b.id || s.more != b.more {
			col.add(Diagnostic{Invariant: InvSigStream, Cell: -1, Instr: s.instr, Loop: b.id,
				Detail: fmt.Sprintf("signal %d: IU sends L%d(more=%v) but the sequencer crosses L%d(more=%v)", i, s.id, s.more, b.id, b.more)})
			seqOK = false
		}
		if s.at > b.at+p.Lead {
			col.add(Diagnostic{Invariant: InvSigStream, Cell: 0, Instr: s.instr, Loop: b.id,
				Detail: fmt.Sprintf("signal %d arrives at IU cycle %d, after cell 0 needs it at cycle %d", i, s.at, b.at+p.Lead)})
			seqOK = false
		}
	}
	if seqOK {
		col.ok()
	}
	if len(trace.sigs) > 0 {
		pushes := make([]event, len(trace.sigs))
		for i, s := range trace.sigs {
			pushes[i] = event{at: s.at, instr: s.instr}
		}
		pops := make([]event, len(bounds))
		for i, b := range bounds {
			pops[i] = event{at: b.at, instr: -1}
		}
		res := sweep(pushes, pops, 0, p.Lead, mcode.QueueDepth)
		if res.overAt >= 0 {
			col.add(Diagnostic{Invariant: InvQueueOverflow, Cell: 0, Instr: res.overInstr, Loop: -1,
				Detail: fmt.Sprintf("Sig queue into cell 0 reaches occupancy %d (> %d) at IU cycle %d", res.maxOcc, mcode.QueueDepth, res.overPush)})
		} else {
			col.ok()
		}
		if rep.Sig.Method == "" || res.maxOcc > rep.Sig.Max {
			rep.Sig = Occ{Max: res.maxOcc, Method: "exact"}
		}
	}
}

package verify

// counts.go is the symbolic side of the queue-safety proof: per-loop
// send/receive counting that bounds queue occupancy for every iteration
// count without enumerating a single dynamic event.
//
// For a channel between adjacent cells running the same program shifted
// by the skew s, the queue occupancy at upstream cell time x is
//
//	occ(x) = S(x) − R(x−s)
//	       = [S(x) − R(x)] + [R(x) − R(x−s)]
//	       ≤ max_x D(x)    + min(s·rate, total receives)
//
// where S and R are the cumulative send/receive counts of the program,
// D = S − R is the send/receive lag, and rate is the channel's maximum
// receives per cycle (1 for a data channel: one receive port per
// channel per instruction).  D's extremes are computed compositionally
// over the loop structure: a loop's per-iteration net is constant, so
// within the whole loop the prefix extremes are attained in the first
// or last iteration depending on the net's sign — exact, in closed
// form, for any trip count.

// treeExtremes returns the net send−recv delta of the stream and the
// exact extremes of the running lag over every prefix, counting a
// cycle's sends before its receives (push-before-pop within a cycle,
// matching the machine's left-to-right stepping order).
func treeExtremes(body []snode) (net, lo, hi int64) {
	var cur int64
	for _, n := range body {
		if n.loop != nil {
			bn, bl, bh := treeExtremes(n.loop.body)
			// Prefix extremes within iteration k are cur + k·bn + {bl,bh};
			// extremal at k = 0 or k = trips−1 by the sign of bn.
			last := n.loop.trips - 1
			if bn >= 0 {
				hi = max64(hi, cur+last*bn+bh)
				lo = min64(lo, cur+bl)
			} else {
				hi = max64(hi, cur+bh)
				lo = min64(lo, cur+last*bn+bl)
			}
			cur += n.loop.trips * bn
			continue
		}
		hi = max64(hi, cur+int64(n.send))
		lo = min64(lo, cur-int64(n.recv))
		cur += int64(n.send) - int64(n.recv)
	}
	return cur, lo, hi
}

// symbolicOccBound bounds the peak occupancy of the inter-cell queue
// fed by sends of the stream and drained, skew cycles later, by its
// receives, where rate is the stream's maximum receives per cycle.
func symbolicOccBound(body []snode, skewCycles int64, rate int64) int64 {
	_, _, hi := treeExtremes(body)
	_, recvs := treeCount(body)
	window := skewCycles * rate
	if recvs < window {
		window = recvs
	}
	return hi + window
}

// symbolicWindowBound bounds the peak occupancy of a queue whose pushes
// and pops are the same event stream shifted by skew cycles (the Adr
// and Sig queues between cells: each cell forwards the word the cycle
// it consumes it).  Occupancy is the event count in a skew-cycle
// window, at most min(skew·rate, total).
func symbolicWindowBound(total, skewCycles, rate int64) int64 {
	w := skewCycles * rate
	if total < w {
		return total
	}
	return w
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

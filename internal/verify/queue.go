package verify

// queue.go holds the exact (enumerated) occupancy analyses.  Every
// queue in the machine is push-before-pop within a cycle: the global
// clock steps the IU, then the host, then the cells left to right, so a
// word pushed upstream at cycle t is poppable downstream at the same t.
// The sweeps therefore order pushes before pops at equal times.

// sweepResult is the outcome of one merged push/pop sweep.
type sweepResult struct {
	maxOcc int64
	// underAt is the ordinal of the first pop that would underflow
	// (-1 when none), with the pop and the matching push times.
	underAt             int
	underPop, underPush int64
	underInstr          int
	// overAt is the ordinal of the first push exceeding cap (-1 none).
	overAt    int
	overPush  int64
	overInstr int
}

// sweep merges push events (shifted by pushShift) and pop events
// (shifted by popShift) in time order, pushes first at ties, tracking
// occupancy against cap.  Events must be in nondecreasing time order.
func sweep(pushes, pops []event, pushShift, popShift int64, cap int64) sweepResult {
	res := sweepResult{underAt: -1, overAt: -1}
	var occ int64
	i, j := 0, 0
	for i < len(pushes) || j < len(pops) {
		pushNext := j >= len(pops)
		if !pushNext && i < len(pushes) {
			pushNext = pushes[i].at+pushShift <= pops[j].at+popShift
		}
		if pushNext {
			occ++
			if occ > res.maxOcc {
				res.maxOcc = occ
			}
			if occ > cap && res.overAt < 0 {
				res.overAt = i
				res.overPush = pushes[i].at + pushShift
				res.overInstr = pushes[i].instr
			}
			i++
		} else {
			if occ == 0 && res.underAt < 0 {
				res.underAt = j
				res.underPop = pops[j].at + popShift
				res.underInstr = pops[j].instr
				if j < len(pushes) {
					res.underPush = pushes[j].at + pushShift
				}
				// Keep sweeping for the peak, but an underflowed queue's
				// subsequent occupancy is no longer meaningful; stop.
				return res
			}
			occ--
			j++
		}
	}
	return res
}

// maxWindow returns the largest number of events falling in any
// half-open window (t−width, t]: the exact peak occupancy of a queue
// whose pops replay its pushes width cycles later (the forwarded Adr
// and Sig streams between cells).  times must be nondecreasing.
func maxWindow(times []int64, width int64) int64 {
	var best int64
	i := 0
	for j := range times {
		for times[i] <= times[j]-width {
			i++
		}
		if n := int64(j - i + 1); n > best {
			best = n
		}
	}
	return best
}

package commgraph

import (
	"strings"
	"testing"

	"warp/internal/ir"
	"warp/internal/w2"
)

func buildSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	m, err := w2.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := w2.Analyze(m)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	p, err := ir.Build(info)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

// TestFig51NoCycle: program A of Figure 5-1 — the sent data is
// unrelated to the received data, so the communication edge completes
// no cycle.
func TestFig51NoCycle(t *testing.T) {
	p := buildSrc(t, `
module a (xs in, ys out)
float xs[8];
float ys[8];
cellprogram (c : 0 : 3)
begin
    function f
    begin
        float v, acc;
        int i;
        acc := 1.0;
        for i := 0 to 7 do begin
            receive (L, X, v, xs[i]);
            acc := acc + 1.0;
            send (R, X, acc, ys[i]);
        end;
    end
    call f;
end
`)
	a := Analyze(p)
	if a.RightCycle {
		t.Error("independent send wrongly classified as a right cycle")
	}
	if !a.Mappable() || !a.Unidirectional() {
		t.Error("program A must be mappable and unidirectional")
	}
	if err := Check(p, 4); err != nil {
		t.Errorf("Check: %v", err)
	}
}

// TestFig51RightCycle: program B — each cell sends the data it
// receives, creating a right cycle (which forces skewing to the right
// and is fine on its own).
func TestFig51RightCycle(t *testing.T) {
	p := buildSrc(t, `
module b (xs in, ys out)
float xs[8];
float ys[8];
cellprogram (c : 0 : 3)
begin
    function f
    begin
        float v;
        int i;
        for i := 0 to 7 do begin
            receive (L, X, v, xs[i]);
            send (R, X, v, ys[i]);
        end;
    end
    call f;
end
`)
	a := Analyze(p)
	if !a.RightCycle {
		t.Error("forwarding program must have a right cycle")
	}
	if a.LeftCycle {
		t.Error("no left cycle expected")
	}
	if !a.Mappable() {
		t.Error("a single right cycle is mappable")
	}
}

// TestCycleThroughScalarAcrossBlocks: the dependence from receive to
// send may pass through a scalar carried across basic blocks.
func TestCycleThroughScalarAcrossBlocks(t *testing.T) {
	p := buildSrc(t, `
module b (xs in, ys out)
float xs[8];
float ys[8];
cellprogram (c : 0 : 3)
begin
    function f
    begin
        float v, acc;
        int i;
        acc := 0.0;
        for i := 0 to 7 do begin
            receive (L, X, v, xs[i]);
            acc := acc + v;
        end;
        for i := 0 to 7 do
            send (R, X, acc, ys[i]);
    end
    call f;
end
`)
	a := Analyze(p)
	if !a.RightCycle {
		t.Error("cycle through the accumulator not detected")
	}
}

// TestCycleThroughMemory: the dependence may pass through cell memory.
func TestCycleThroughMemory(t *testing.T) {
	p := buildSrc(t, `
module b (xs in, ys out)
float xs[8];
float ys[8];
cellprogram (c : 0 : 3)
begin
    function f
    begin
        float v;
        float buf[8];
        int i;
        for i := 0 to 7 do begin
            receive (L, X, v, xs[i]);
            buf[i] := v;
        end;
        for i := 0 to 7 do
            send (R, X, buf[i], ys[i]);
    end
    call f;
end
`)
	a := Analyze(p)
	if !a.RightCycle {
		t.Error("cycle through cell memory not detected")
	}
}

// TestBidirectionalRejected: both right and left cycles — not mappable
// onto the skewed computation model (§5.1.1).
func TestBidirectionalRejected(t *testing.T) {
	p := buildSrc(t, `
module bidi (xs in, ys out)
float xs[8];
float ys[8];
cellprogram (c : 0 : 3)
begin
    function f
    begin
        float v, w;
        int i;
        for i := 0 to 7 do begin
            receive (L, X, v, xs[i]);
            send (R, X, v);
            receive (R, Y, w, xs[i]);
            send (L, Y, w, ys[i]);
        end;
    end
    call f;
end
`)
	a := Analyze(p)
	if !a.RightCycle || !a.LeftCycle {
		t.Fatalf("expected both cycles, got %+v", a)
	}
	if a.Mappable() {
		t.Error("both cycles must be unmappable")
	}
	err := Check(p, 4)
	if err == nil || !strings.Contains(err.Error(), "both right and left") {
		t.Errorf("Check error = %v", err)
	}
}

// TestConservationViolationRejected: unbalanced send/receive counts on
// a channel break homogeneity.
func TestConservationViolationRejected(t *testing.T) {
	p := buildSrc(t, `
module unbal (xs in, ys out)
float xs[8];
float ys[8];
cellprogram (c : 0 : 3)
begin
    function f
    begin
        float v;
        int i;
        for i := 0 to 7 do
            receive (L, X, v, xs[i]);
        send (R, X, v, ys[0]);
    end
    call f;
end
`)
	err := Check(p, 4)
	if err == nil || !strings.Contains(err.Error(), "conserve") {
		t.Errorf("Check error = %v, want conservation failure", err)
	}
	// The same program is fine on a single cell.
	if err := Check(p, 1); err != nil {
		t.Errorf("single-cell Check: %v", err)
	}
}

// Package commgraph implements the communication-cycle analysis of
// §5.1.1: the computation of the array is represented as a graph with
// one set of nodes (all cells run the same function) and two kinds of
// edges — intra-cell computation dependences and inter-cell
// communication edges labelled by direction.  A "right" edge connects a
// send-to-right to the neighbour's receive-from-left; a "left" edge
// connects a send-to-left to a receive-from-right.
//
// A right cycle (a communication edge labelled "right" completing a
// cycle) forces a cell to be skewed after its left neighbour; a left
// cycle forces the opposite.  A program with both kinds of cycle cannot
// be mapped onto the skewed computation model.  Because every cell runs
// the same code, a right cycle exists exactly when some send-to-right
// is data-dependent on some receive-from-left, and symmetrically for
// left cycles.
package commgraph

import (
	"fmt"

	"warp/internal/ir"
	"warp/internal/opt"
	"warp/internal/w2"
)

// Analysis reports the communication structure of a cell program.
type Analysis struct {
	// UsesRightward: the program sends data to the right (or receives
	// from the left) — data flowing host→array→host.
	UsesRightward bool
	// UsesLeftward: the program sends data to the left (or receives
	// from the right).
	UsesLeftward bool
	// RightCycle: some send-to-right depends on a receive-from-left.
	RightCycle bool
	// LeftCycle: some send-to-left depends on a receive-from-right.
	LeftCycle bool
}

// Mappable reports whether the program fits the skewed computation
// model: it must not contain both right and left cycles.
func (a Analysis) Mappable() bool { return !(a.RightCycle && a.LeftCycle) }

// Unidirectional reports whether all communication flows one way,
// which is what the paper's compiler (and ours) accepts.
func (a Analysis) Unidirectional() bool { return !(a.UsesRightward && a.UsesLeftward) }

// Analyze inspects every function of the program.
func Analyze(p *ir.Program) Analysis {
	var a Analysis
	for _, fn := range p.Funcs {
		g := opt.GlobalDeps(fn)
		var recvL, recvR, sendL, sendR []*ir.Node
		ir.Walk(fn.Regions, func(b *ir.Block) {
			for _, n := range b.Nodes {
				switch {
				case n.Op == ir.OpRecv && n.Dir == w2.DirL:
					recvL = append(recvL, n)
				case n.Op == ir.OpRecv && n.Dir == w2.DirR:
					recvR = append(recvR, n)
				case n.Op == ir.OpSend && n.Dir == w2.DirL:
					sendL = append(sendL, n)
				case n.Op == ir.OpSend && n.Dir == w2.DirR:
					sendR = append(sendR, n)
				}
			}
		})
		if len(recvL)+len(sendR) > 0 {
			a.UsesRightward = true
		}
		if len(recvR)+len(sendL) > 0 {
			a.UsesLeftward = true
		}
		if !a.RightCycle && reaches(g, recvL, sendR) {
			a.RightCycle = true
		}
		if !a.LeftCycle && reaches(g, recvR, sendL) {
			a.LeftCycle = true
		}
	}
	return a
}

// reaches reports whether any target is data-dependent on any source.
func reaches(g *opt.DepGraph, sources, targets []*ir.Node) bool {
	if len(sources) == 0 || len(targets) == 0 {
		return false
	}
	targetSet := make(map[*ir.Node]bool, len(targets))
	for _, t := range targets {
		targetSet[t] = true
	}
	for _, s := range sources {
		for n := range g.Reachable(s) {
			if targetSet[n] {
				return true
			}
		}
	}
	return false
}

// Check validates a program against the restrictions of §5.1: it must
// be mappable onto the skewed computation model, and (like the paper's
// compiler) we additionally require unidirectional flow.  Sends must
// also be balanced with receives: within one homogeneous program, cell
// i+1 receives from its left exactly what cell i sends to its right,
// so the static counts must agree.  A single-cell array has no interior
// boundary, so the conservation requirement is waived there.
func Check(p *ir.Program, ncells int) error {
	a := Analyze(p)
	if !a.Mappable() {
		return fmt.Errorf("commgraph: program has both right and left communication cycles and cannot be mapped onto the skewed computation model (§5.1.1)")
	}
	if !a.Unidirectional() {
		return fmt.Errorf("commgraph: program sends data both leftward and rightward; the compiler handles unidirectional flow only (§5.1.1)")
	}
	if ncells <= 1 {
		return nil
	}
	for _, fn := range p.Funcs {
		for _, ch := range []w2.Channel{w2.ChanX, w2.ChanY} {
			if recv, send := fn.NumRecv[w2.DirL][ch], fn.NumSend[w2.DirR][ch]; recv != send {
				return fmt.Errorf("commgraph: function %s receives %d from the left but sends %d to the right on channel %s; homogeneous cells must conserve the stream (insert dummy sends, as in the paper's Figure 4-1)",
					fn.Decl.Name, recv, send, ch)
			}
			if recv, send := fn.NumRecv[w2.DirR][ch], fn.NumSend[w2.DirL][ch]; recv != send {
				return fmt.Errorf("commgraph: function %s receives %d from the right but sends %d to the left on channel %s; homogeneous cells must conserve the stream",
					fn.Decl.Name, recv, send, ch)
			}
		}
	}
	return nil
}

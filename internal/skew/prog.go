package skew

import (
	"fmt"
	"strings"
)

// Kind distinguishes the two roles an I/O operation plays in the skew
// analysis of one channel: inputs (receives) and outputs (sends).
type Kind int

// I/O kinds.
const (
	Input Kind = iota
	Output
)

func (k Kind) String() string {
	if k == Input {
		return "input"
	}
	return "output"
}

// Elem is an element of a timed I/O program: an operation or a loop.
type Elem interface {
	elem()
}

// Op is one static I/O statement, executed at cycle At relative to the
// start of the enclosing loop body (or program).
type Op struct {
	Kind Kind
	ID   int // statement identifier, unique per kind within the program
	At   int64
}

// Loop is a counted loop starting at cycle At relative to the enclosing
// body, whose body takes IterLen cycles and executes Trips times,
// back to back.
type Loop struct {
	At      int64
	Trips   int64
	IterLen int64
	Body    []Elem
}

func (*Op) elem()   {}
func (*Loop) elem() {}

// Prog is a timed I/O program: the I/O behaviour of one compiled cell
// program, reduced to the cycle-exact times of its send and receive
// operations.  Len is the total execution length in cycles.
type Prog struct {
	Body []Elem
	Len  int64
}

// Validate checks structural invariants: operation times within bounds,
// loops within their enclosing body, monotone layout, unique IDs.
func (p *Prog) Validate() error {
	ids := map[Kind]map[int]bool{Input: {}, Output: {}}
	if err := validateBody(p.Body, p.Len, ids); err != nil {
		return err
	}
	return nil
}

func validateBody(body []Elem, length int64, ids map[Kind]map[int]bool) error {
	for _, e := range body {
		switch e := e.(type) {
		case *Op:
			if e.At < 0 || e.At >= length {
				return fmt.Errorf("skew: op %s(%d) at cycle %d outside body of %d cycles", e.Kind, e.ID, e.At, length)
			}
			if ids[e.Kind][e.ID] {
				return fmt.Errorf("skew: duplicate %s statement id %d", e.Kind, e.ID)
			}
			ids[e.Kind][e.ID] = true
		case *Loop:
			if e.Trips < 1 {
				return fmt.Errorf("skew: loop with %d trips", e.Trips)
			}
			if e.IterLen < 1 {
				return fmt.Errorf("skew: loop with iteration length %d", e.IterLen)
			}
			if e.At < 0 || e.At+e.Trips*e.IterLen > length {
				return fmt.Errorf("skew: loop [%d,%d) outside body of %d cycles", e.At, e.At+e.Trips*e.IterLen, length)
			}
			if err := validateBody(e.Body, e.IterLen, ids); err != nil {
				return err
			}
		}
	}
	return nil
}

// Count returns the number of dynamic operations of the given kind.
func (p *Prog) Count(k Kind) int64 { return countBody(p.Body, k) }

func countBody(body []Elem, k Kind) int64 {
	var n int64
	for _, e := range body {
		switch e := e.(type) {
		case *Op:
			if e.Kind == k {
				n++
			}
		case *Loop:
			n += e.Trips * countBody(e.Body, k)
		}
	}
	return n
}

// Times enumerates the execution cycle of every dynamic operation of
// kind k, in ordinal order: Times(k)[n] is the cycle the nth operation
// executes, relative to the start of the program.  This is the exact
// (enumerated) form of the timing function τ; the closed form is
// computed by Statements/TimingFunc.
func (p *Prog) Times(k Kind) []int64 {
	out := make([]int64, 0, p.Count(k))
	out = appendTimes(out, p.Body, k, 0)
	return out
}

func appendTimes(out []int64, body []Elem, k Kind, base int64) []int64 {
	for _, e := range body {
		switch e := e.(type) {
		case *Op:
			if e.Kind == k {
				out = append(out, base+e.At)
			}
		case *Loop:
			for i := int64(0); i < e.Trips; i++ {
				out = appendTimes(out, e.Body, k, base+e.At+i*e.IterLen)
			}
		}
	}
	return out
}

// EachTime calls f(n, t) for the nth dynamic operation of kind k
// executing at cycle t, without materializing the whole sequence.
// It stops early if f returns false.
func (p *Prog) EachTime(k Kind, f func(n, t int64) bool) {
	n := int64(0)
	eachTime(p.Body, k, 0, &n, f)
}

func eachTime(body []Elem, k Kind, base int64, n *int64, f func(n, t int64) bool) bool {
	for _, e := range body {
		switch e := e.(type) {
		case *Op:
			if e.Kind == k {
				if !f(*n, base+e.At) {
					return false
				}
				*n++
			}
		case *Loop:
			for i := int64(0); i < e.Trips; i++ {
				if !eachTime(e.Body, k, base+e.At+i*e.IterLen, n, f) {
					return false
				}
			}
		}
	}
	return true
}

// String renders the program structure.
func (p *Prog) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "prog len=%d\n", p.Len)
	dumpBody(&sb, p.Body, 1)
	return sb.String()
}

func dumpBody(sb *strings.Builder, body []Elem, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, e := range body {
		switch e := e.(type) {
		case *Op:
			fmt.Fprintf(sb, "%s@%d %s(%d)\n", indent, e.At, e.Kind, e.ID)
		case *Loop:
			fmt.Fprintf(sb, "%s@%d loop %d times, %d cycles/iter\n", indent, e.At, e.Trips, e.IterLen)
			dumpBody(sb, e.Body, depth+1)
		}
	}
}

// ---------------------------------------------------------------------
// Builder for abstract instruction-sequence programs (one instruction
// per cycle), used to transcribe programs like the paper's Figures 6-2
// and 6-4 directly.

// Item is an element of an abstract instruction sequence.
type Item interface {
	itemLen() int64
}

type nopItem struct{}
type ioItem struct{ kind Kind }
type repItem struct {
	trips int64
	body  []Item
}

func (nopItem) itemLen() int64 { return 1 }
func (ioItem) itemLen() int64  { return 1 }
func (r repItem) itemLen() int64 {
	var n int64
	for _, it := range r.body {
		n += it.itemLen()
	}
	return n * r.trips
}

// Nop is a one-cycle instruction with no I/O.
func Nop() Item { return nopItem{} }

// In is a one-cycle input (receive) instruction.
func In() Item { return ioItem{Input} }

// Out is a one-cycle output (send) instruction.
func Out() Item { return ioItem{Output} }

// Rep is a loop executing body trips times.
func Rep(trips int64, body ...Item) Item { return repItem{trips, body} }

// Build assembles an abstract instruction sequence into a timed
// program.  Statement IDs are assigned in textual order per kind,
// matching the paper's I(0), I(1), O(0)... numbering.
func Build(items ...Item) *Prog {
	ids := map[Kind]*int{Input: new(int), Output: new(int)}
	body, n := buildItems(items, ids)
	return &Prog{Body: body, Len: n}
}

func buildItems(items []Item, ids map[Kind]*int) ([]Elem, int64) {
	var body []Elem
	var at int64
	for _, it := range items {
		switch it := it.(type) {
		case nopItem:
			at++
		case ioItem:
			id := ids[it.kind]
			body = append(body, &Op{Kind: it.kind, ID: *id, At: at})
			*id++
			at++
		case repItem:
			inner, n := buildItems(it.body, ids)
			body = append(body, &Loop{At: at, Trips: it.trips, IterLen: n, Body: inner})
			at += n * it.trips
		}
	}
	return body, at
}

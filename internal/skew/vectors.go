package skew

import (
	"fmt"
	"sort"
	"strings"
)

// Vectors are the five characteristic vectors of one I/O statement
// (§6.2.1 of the paper).  Each has k elements, where k−1 is the number
// of enclosing loops and the statement itself is treated as a final
// single-iteration loop, the first element describing the outermost
// loop:
//
//	R: number of iterations
//	N: number of inputs/outputs (of this statement's kind and channel)
//	   in one iteration of the loop
//	S: ordinal number of the first input/output in the loop with
//	   respect to the enclosing loop
//	L: time of execution of one iteration of the loop
//	T: time to start the first iteration of the loop with respect to
//	   the enclosing loop
type Vectors struct {
	ID   int
	Kind Kind
	R    []int64
	N    []int64
	S    []int64
	L    []int64
	T    []int64
}

// Depth returns k, the number of vector elements.
func (v *Vectors) Depth() int { return len(v.R) }

func fmtVec(v []int64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

func (v *Vectors) String() string {
	return fmt.Sprintf("%s(%d): R=%s N=%s S=%s L=%s T=%s",
		v.Kind, v.ID, fmtVec(v.R), fmtVec(v.N), fmtVec(v.S), fmtVec(v.L), fmtVec(v.T))
}

// Statements extracts the characteristic vectors of every statement of
// kind k in the program, ordered by statement ID.
func Statements(p *Prog, k Kind) []*Vectors {
	var out []*Vectors
	extractVectors(p.Body, k, nil, &out)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// frame describes one enclosing loop during extraction.
type frame struct {
	r, n, s, l, t int64
}

func extractVectors(body []Elem, k Kind, stack []frame, out *[]*Vectors) int64 {
	// opsBefore counts the kind-k operations executed earlier in this
	// body (one iteration of the enclosing loop).
	var opsBefore int64
	for _, e := range body {
		switch e := e.(type) {
		case *Op:
			if e.Kind != k {
				continue
			}
			v := &Vectors{ID: e.ID, Kind: k}
			for _, f := range stack {
				v.R = append(v.R, f.r)
				v.N = append(v.N, f.n)
				v.S = append(v.S, f.s)
				v.L = append(v.L, f.l)
				v.T = append(v.T, f.t)
			}
			// The statement itself is a single-iteration loop of one
			// cycle (§6.2.1: "the input/output operations themselves
			// are considered a single-iteration loop").
			v.R = append(v.R, 1)
			v.N = append(v.N, 1)
			v.S = append(v.S, opsBefore)
			v.L = append(v.L, 1)
			v.T = append(v.T, e.At)
			*out = append(*out, v)
			opsBefore++
		case *Loop:
			perIter := countBody(e.Body, k)
			f := frame{r: e.Trips, n: perIter, s: opsBefore, l: e.IterLen, t: e.At}
			extractVectors(e.Body, k, append(stack, f), out)
			opsBefore += e.Trips * perIter
		}
	}
	return opsBefore
}

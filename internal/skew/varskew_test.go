package skew

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestVariableSkewFig64: on the Figure 6-4 program, just-in-time
// receives reduce queue demand without changing latency.
func TestVariableSkewFig64(t *testing.T) {
	p := Fig64()
	r, err := VariableSkew(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.FixedSkew != 18 {
		t.Errorf("fixed skew %d, want 18", r.FixedSkew)
	}
	if r.VarOccupancy > r.FixedOccupancy {
		t.Errorf("variable occupancy %d exceeds fixed %d", r.VarOccupancy, r.FixedOccupancy)
	}
	if r.VarOccupancy < 1 {
		t.Errorf("variable occupancy %d; at least one word must be in flight", r.VarOccupancy)
	}
	// The binding receive keeps its fixed-skew time: max delay = skew.
	maxDelay := int64(0)
	for _, d := range r.Delays {
		if d > maxDelay {
			maxDelay = d
		}
	}
	if maxDelay != r.FixedSkew {
		t.Errorf("max just-in-time delay %d, want the fixed skew %d (the binding constraint)", maxDelay, r.FixedSkew)
	}
	t.Log("\n" + r.Describe())
}

// TestVariableSkewQuick: on random balanced programs, the variable
// discipline never increases queue demand, never delays a receive past
// the fixed schedule, and all delays are nonnegative.
func TestVariableSkewQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProg(rng, true)
		if p.Count(Input) == 0 {
			return true
		}
		r, err := VariableSkew(p, p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if r.VarOccupancy > r.FixedOccupancy {
			t.Logf("seed %d: occupancy grew %d -> %d", seed, r.FixedOccupancy, r.VarOccupancy)
			return false
		}
		ti := p.Times(Input)
		to := p.Times(Output)
		for n, d := range r.Delays {
			if d < 0 || d > r.FixedSkew {
				t.Logf("seed %d: delay %d out of range", seed, n)
				return false
			}
			// Just-in-time time must still be at or after the send.
			if ti[n]+d < to[n] {
				t.Logf("seed %d: receive %d before its send", seed, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

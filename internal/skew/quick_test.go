package skew

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randProg draws a random timed I/O program: a sequence of nops, I/O
// operations and (possibly nested) loops.  balanced forces equal input
// and output counts by appending padding pairs.
func randProg(r *rand.Rand, balanced bool) *Prog {
	var gen func(depth int, budget *int) []Item
	gen = func(depth int, budget *int) []Item {
		var items []Item
		n := 1 + r.Intn(5)
		for i := 0; i < n && *budget > 0; i++ {
			*budget--
			switch k := r.Intn(6); {
			case k == 0 && depth < 3:
				body := gen(depth+1, budget)
				if len(body) == 0 {
					body = []Item{Nop()}
				}
				items = append(items, Rep(int64(1+r.Intn(4)), body...))
			case k <= 2:
				items = append(items, Nop())
			case k <= 4:
				items = append(items, In())
			default:
				items = append(items, Out())
			}
		}
		return items
	}
	budget := 30
	items := gen(0, &budget)
	p := Build(items...)
	if balanced {
		in, out := p.Count(Input), p.Count(Output)
		for ; in < out; in++ {
			items = append(items, In())
		}
		for ; out < in; out++ {
			items = append(items, Out())
		}
		p = Build(items...)
	}
	return p
}

// TestQuickClosedFormMatchesEnumeration: for random programs, every
// statement's closed-form τ (recursive and symbolic) agrees with
// enumerated times over its whole domain, and the domains of the
// statements partition the ordinals.
func TestQuickClosedFormMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randProg(r, false)
		if err := p.Validate(); err != nil {
			t.Logf("invalid program: %v", err)
			return false
		}
		for _, kind := range []Kind{Input, Output} {
			times := p.Times(kind)
			claimed := make([]int, len(times))
			for _, v := range Statements(p, kind) {
				tf := NewTimingFunc(v)
				sym := tf.Symbolic()
				if tf.DomainSize() == 0 {
					return false
				}
				tf.DomainEach(func(n int64) bool {
					got, ok := tf.Eval(n)
					if !ok || n >= int64(len(times)) || got != times[n] {
						t.Logf("seed %d: %s(%d) τ(%d) mismatch", seed, kind, v.ID, n)
						claimed[0] = -1000000
						return false
					}
					if sgot, sok := sym.Eval(n); !sok || sgot != got {
						t.Logf("seed %d: symbolic mismatch at n=%d", seed, n)
						claimed[0] = -1000000
						return false
					}
					claimed[n]++
					return true
				})
			}
			for n, c := range claimed {
				if c != 1 {
					t.Logf("seed %d: %s ordinal %d claimed %d times", seed, kind, n, c)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickBoundSound: the pairwise bound is always ≥ the exact
// minimum skew, in both modes, on random balanced programs.
func TestQuickBoundSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randProg(r, true)
		if p.Count(Input) == 0 {
			return true
		}
		exact, err := MinSkewExact(p, p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, mode := range []BoundMode{BoundPaper, BoundTight} {
			b, _, err := MinSkewBound(p, p, mode)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if b.Cmp(RI(exact)) < 0 {
				t.Logf("seed %d mode %d: bound %s < exact %d", seed, mode, b, exact)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickExactSkewIsTightAndSafe: the exact minimum skew passes the
// occupancy (underflow) check and skew−1 fails it.
func TestQuickExactSkewIsTightAndSafe(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randProg(r, true)
		if p.Count(Input) == 0 {
			return true
		}
		exact, err := MinSkewExact(p, p)
		if err != nil {
			return false
		}
		if _, err := MaxOccupancy(p, p, exact); err != nil {
			t.Logf("seed %d: exact skew %d rejected: %v", seed, exact, err)
			return false
		}
		if _, err := MaxOccupancy(p, p, exact-1); err == nil {
			t.Logf("seed %d: skew %d (one below exact) accepted", seed, exact-1)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickOccupancyMonotone: occupancy never decreases as skew grows,
// and is bounded by the total transfer count.
func TestQuickOccupancyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randProg(r, true)
		total := p.Count(Input)
		if total == 0 {
			return true
		}
		exact, err := MinSkewExact(p, p)
		if err != nil {
			return false
		}
		prev := int64(-1)
		for s := exact; s < exact+10; s++ {
			occ, err := MaxOccupancy(p, p, s)
			if err != nil {
				return false
			}
			if occ < prev || occ > total {
				return false
			}
			prev = occ
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickVectorsConsistency: the vector-derived domain size equals the
// actual execution count per statement, and τ is strictly increasing on
// the domain (times advance with ordinals).
func TestQuickVectorsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randProg(r, false)
		for _, kind := range []Kind{Input, Output} {
			var sum int64
			for _, v := range Statements(p, kind) {
				tf := NewTimingFunc(v)
				sum += tf.DomainSize()
				prevT := int64(-1)
				okAll := true
				tf.DomainEach(func(n int64) bool {
					tt, ok := tf.Eval(n)
					if !ok || tt <= prevT {
						okAll = false
						return false
					}
					prevT = tt
					return true
				})
				if !okAll {
					return false
				}
			}
			if sum != p.Count(kind) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Package skew implements the paper's central contribution: the skewed
// computation model and the compile-time synchronization analysis that
// maps W2's asynchronous communication onto the synchronous Warp array
// (§3, §6.2).
//
// The package answers two questions about a compiled cell program:
//
//  1. Minimum skew: by how many cycles must a cell's execution be
//     delayed relative to its upstream neighbour so that no receive
//     operation executes before the matching send (queue underflow,
//     §6.2.1)?
//
//  2. Queue occupancy: given that skew, how many words can be resident
//     in a channel queue at once (queue overflow, §6.2.2)?
//
// Inputs are timed I/O programs: loop trees annotated with cycle-exact
// operation times, produced by the cell code generator (or built
// directly with the Seq/Rep helpers for analysis of abstract programs
// like the paper's Figures 6-2 and 6-4).
package skew

import "fmt"

// Rat is an exact rational number with int64 numerator and denominator.
// The minimum-skew bound computation manipulates coefficients like 5/3
// and 52/3 (Table 6-4 of the paper), so exact arithmetic is required.
type Rat struct {
	num int64
	den int64 // always > 0
}

// R returns the rational num/den.
func R(num, den int64) Rat {
	if den == 0 {
		panic("skew: rational with zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd(abs64(num), den)
	if g > 1 {
		num /= g
		den /= g
	}
	return Rat{num, den}
}

// RI returns the rational n/1.
func RI(n int64) Rat { return Rat{n, 1} }

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// Num returns the numerator of the normalized rational.
func (r Rat) Num() int64 { return r.num }

// Den returns the (positive) denominator of the normalized rational.
func (r Rat) Den() int64 { return r.den }

// Add returns r+s.
func (r Rat) Add(s Rat) Rat { return R(r.num*s.den+s.num*r.den, r.den*s.den) }

// Sub returns r−s.
func (r Rat) Sub(s Rat) Rat { return R(r.num*s.den-s.num*r.den, r.den*s.den) }

// Mul returns r·s.
func (r Rat) Mul(s Rat) Rat { return R(r.num*s.num, r.den*s.den) }

// MulI returns r·n.
func (r Rat) MulI(n int64) Rat { return R(r.num*n, r.den) }

// Neg returns −r.
func (r Rat) Neg() Rat { return Rat{-r.num, r.den} }

// Cmp returns −1, 0, or 1 as r is less than, equal to, or greater
// than s.
func (r Rat) Cmp(s Rat) int {
	d := r.num*s.den - s.num*r.den
	switch {
	case d < 0:
		return -1
	case d > 0:
		return 1
	}
	return 0
}

// Sign returns the sign of r.
func (r Rat) Sign() int { return r.Cmp(Rat{0, 1}) }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.den == 1 }

// Ceil returns the smallest integer ≥ r.
func (r Rat) Ceil() int64 {
	q := r.num / r.den
	if r.num%r.den > 0 {
		q++
	}
	return q
}

// Floor returns the largest integer ≤ r.
func (r Rat) Floor() int64 {
	q := r.num / r.den
	if r.num%r.den < 0 {
		q--
	}
	return q
}

// Float returns the nearest float64.
func (r Rat) Float() float64 { return float64(r.num) / float64(r.den) }

func (r Rat) String() string {
	if r.den == 1 {
		return fmt.Sprintf("%d", r.num)
	}
	return fmt.Sprintf("%d/%d", r.num, r.den)
}

package skew

import "fmt"

// This file implements the queue-occupancy analysis (§6.2.2): with the
// chosen skew, how many words are simultaneously resident in the
// channel queue between two adjacent cells?  The Warp hardware provides
// a 128-word queue per channel and no flow control, so the compiler must
// prove the bound.  Like the paper's compiler, ours detects and reports
// overflow rather than restructuring the program to buffer overflow
// data in cell memory.

// MaxOccupancy computes the maximum number of words resident in the
// queue between an upstream cell executing the output program (starting
// at cycle 0) and a downstream cell executing the input program
// (starting at cycle skew).  A word occupies the queue from the cycle it
// is sent until the cycle it is received.
func MaxOccupancy(out, in *Prog, skew int64) (int64, error) {
	to := out.Times(Output)
	ti := in.Times(Input)
	if len(to) != len(ti) {
		return 0, fmt.Errorf("skew: %d outputs vs %d inputs; send/receive counts must match", len(to), len(ti))
	}
	return maxOccupancyTimes(to, ti, skew)
}

// CheckQueue verifies that with the given skew the queue never
// underflows and its occupancy never exceeds capacity.  It returns the
// maximum occupancy observed.
func CheckQueue(out, in *Prog, skew, capacity int64) (int64, error) {
	occ, err := MaxOccupancy(out, in, skew)
	if err != nil {
		return 0, err
	}
	if occ > capacity {
		return occ, fmt.Errorf("skew: queue needs %d words but the hardware provides %d (queue overflow)", occ, capacity)
	}
	return occ, nil
}

package skew

import (
	"fmt"
)

// This file computes the minimum skew between adjacent cells: the
// smallest delay of the downstream cell's start such that every receive
// executes no earlier than its matching send (§6.2.1).
//
//	minimum skew = max over n of ( τ_O(n) − τ_I(n) )
//
// where τ_O times the nth output of the upstream cell's program and τ_I
// the nth input of the downstream cell's program.  Two methods are
// provided: exact enumeration (ground truth; cost proportional to the
// number of dynamic I/O operations) and the paper's cheap pairwise
// bound over the closed-form timing functions (cost proportional to the
// number of static I/O statement pairs, independent of trip counts).

// Overlap classifies how the domains of an output statement and an
// input statement relate (§6.2.1).
type Overlap int

// Overlap classes.
const (
	// Disjoint: no datum produced by the output statement is read by
	// the input statement.
	Disjoint Overlap = iota
	// Complete: every datum produced by the output statement is read by
	// the input statement.
	Complete
	// Partial: some but not all are.
	Partial
	// Unknown: the domains were too large to classify cheaply; treated
	// as Partial for bounding purposes.
	Unknown
)

func (o Overlap) String() string {
	switch o {
	case Disjoint:
		return "disjoint"
	case Complete:
		return "completely overlapped"
	case Partial:
		return "partially overlapped"
	}
	return "unknown"
}

// BoundMode selects how pairwise bounds treat mod terms.
type BoundMode int

// Bound modes.
const (
	// BoundPaper reproduces the paper's recipe (§6.2.1's partially
	// overlapped example): positive-coefficient mod terms take their
	// pinned value when the owning domain pins them, otherwise their
	// maximum; negative-coefficient terms are dropped (lower-bounded by
	// zero).
	BoundPaper BoundMode = iota
	// BoundTight additionally uses pinned values for negative
	// coefficients, which is still sound and never looser.
	BoundTight
)

// classifyLimit bounds the enumeration effort spent classifying a pair's
// domain overlap exactly.
const classifyLimit = 1 << 14

// PairBound is the result of analyzing one (output statement, input
// statement) pair.
type PairBound struct {
	Out, In *Vectors
	Overlap Overlap
	// Bound is a sound upper bound on τ_O(n)−τ_I(n) over the common
	// domain; meaningless when Overlap is Disjoint.
	Bound Rat
}

// AnalyzePair classifies the domain overlap of an output/input statement
// pair and bounds their time difference.
func AnalyzePair(out, in *Vectors, mode BoundMode) PairBound {
	if out.Kind != Output || in.Kind != Input {
		panic("skew: AnalyzePair wants (output, input) vectors")
	}
	tfO, tfI := NewTimingFunc(out), NewTimingFunc(in)
	pb := PairBound{Out: out, In: in}
	pb.Overlap = classify(tfO, tfI)
	if pb.Overlap == Disjoint {
		return pb
	}
	pb.Bound = pairBound(tfO, tfI, mode)
	return pb
}

// classify determines the overlap class.  Small domains are enumerated
// exactly; for larger ones a cheap interval test detects some disjoint
// pairs and the rest are Unknown.
func classify(tfO, tfI *TimingFunc) Overlap {
	loO, hiO := tfO.DomainMin(), tfO.DomainMax()
	loI, hiI := tfI.DomainMin(), tfI.DomainMax()
	if hiO < loI || hiI < loO {
		return Disjoint
	}
	if tfO.DomainSize() <= classifyLimit {
		var common, outOnly int64
		tfO.DomainEach(func(n int64) bool {
			if tfI.Contains(n) {
				common++
			} else {
				outOnly++
			}
			return true
		})
		switch {
		case common == 0:
			return Disjoint
		case outOnly == 0:
			return Complete
		default:
			return Partial
		}
	}
	return Unknown
}

// pairBound computes the paper's upper bound on τ_O(n)−τ_I(n):
// the difference of the two symbolic forms, with n at the endpoint of
// the intersected ordinal interval selected by the sign of its
// coefficient and each mod term replaced by an extreme (or pinned)
// value.
func pairBound(tfO, tfI *TimingFunc, mode BoundMode) Rat {
	symO, symI := tfO.Symbolic(), tfI.Symbolic()
	c0 := symO.Const.Sub(symI.Const)
	c1 := symO.CoefN.Sub(symI.CoefN)

	lo := max64(tfO.DomainMin(), tfI.DomainMin())
	hi := min64(tfO.DomainMax(), tfI.DomainMax())
	nStar := hi
	if c1.Sign() < 0 {
		nStar = lo
	}
	bound := c0.Add(c1.MulI(nStar))

	addTerm := func(m ModTerm, negate bool) {
		coef := m.Coef
		if negate {
			coef = coef.Neg()
		}
		var val int64
		switch {
		case coef.Sign() > 0:
			if m.Pinned {
				val = m.PinVal
			} else {
				val = m.MaxVal
			}
		case mode == BoundTight && m.Pinned:
			val = m.PinVal
		default:
			// Negative coefficient: the term is ≥ 0, so dropping it
			// (value 0) can only increase the bound.
			val = 0
		}
		bound = bound.Add(coef.MulI(val))
	}
	for _, m := range symO.Mods {
		addTerm(m, false)
	}
	for _, m := range symI.Mods {
		addTerm(m, true)
	}
	return bound
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MinSkewExact computes the exact minimum skew between the upstream
// cell's output program and the downstream cell's input program by
// enumerating every matched send/receive pair.  The result may be
// negative (the downstream cell could even start early); callers clamp
// as appropriate.  The two programs must perform the same number of
// operations.
func MinSkewExact(out, in *Prog) (int64, error) {
	to := out.Times(Output)
	ti := in.Times(Input)
	if len(to) != len(ti) {
		return 0, fmt.Errorf("skew: %d outputs vs %d inputs; send/receive counts must match", len(to), len(ti))
	}
	return minSkewTimes(to, ti), nil
}

// MinSkewBound computes the paper's cheap upper bound on the minimum
// skew: the maximum pairwise bound over every (output statement, input
// statement) pair with potentially overlapping domains.  It also
// returns the per-pair analyses for reporting.
//
// A branch-and-bound prefilter (suggested in §6.2.1) skips the detailed
// bound for pairs whose coarse bound — latest output time minus earliest
// input time over the respective domains — cannot beat the current
// maximum.
func MinSkewBound(out, in *Prog, mode BoundMode) (Rat, []PairBound, error) {
	co, ci := out.Count(Output), in.Count(Input)
	if co != ci {
		return Rat{}, nil, fmt.Errorf("skew: %d outputs vs %d inputs; send/receive counts must match", co, ci)
	}
	outStmts := Statements(out, Output)
	inStmts := Statements(in, Input)
	var pairs []PairBound
	have := false
	var best Rat
	for _, o := range outStmts {
		tfO := NewTimingFunc(o)
		maxO, ok := tfO.Eval(tfO.DomainMax())
		if !ok {
			panic("skew: domain max outside domain")
		}
		for _, i := range inStmts {
			tfI := NewTimingFunc(i)
			minI, ok := tfI.Eval(tfI.DomainMin())
			if !ok {
				panic("skew: domain min outside domain")
			}
			if have && RI(maxO-minI).Cmp(best) <= 0 {
				// Coarse bound cannot improve the maximum.
				continue
			}
			pb := AnalyzePair(o, i, mode)
			pairs = append(pairs, pb)
			if pb.Overlap == Disjoint {
				continue
			}
			if !have || pb.Bound.Cmp(best) > 0 {
				best = pb.Bound
				have = true
			}
		}
	}
	if !have {
		return RI(0), pairs, nil
	}
	return best, pairs, nil
}

// SearchStats describes how MinSkew arrived at its answer — which
// method ran and how large the search space was.  The profiler exports
// it so the skew phase's cost can be identified from data.
type SearchStats struct {
	Method string // "exact" or "bound"
	Ops    int64  // dynamic I/O operations enumerated (exact method)
	Pairs  int64  // statement pairs analyzed in detail (bound method)
	Pruned int64  // pairs skipped by the coarse branch-and-bound prefilter
}

// MinSkew returns the skew the compiler applies between adjacent cells:
// the exact minimum when the I/O volume is small enough to enumerate,
// otherwise the ceiling of the pairwise bound, clamped to ≥ 0.
func MinSkew(out, in *Prog) (int64, error) {
	s, _, err := MinSkewStats(out, in)
	return s, err
}

// MinSkewStats is MinSkew plus search-space statistics.
func MinSkewStats(out, in *Prog) (int64, SearchStats, error) {
	a, err := NewAnalysis(out, in)
	if err != nil {
		return 0, SearchStats{}, err
	}
	return a.MinSkewStats()
}

package skew

import "fmt"

// This file provides the cached two-step interface the compiler driver
// uses per channel: the minimum-skew search and the queue-occupancy
// check both need the enumerated dynamic I/O times, and before this
// type existed each step re-enumerated both sides from scratch — four
// multi-megaword walks per channel on image-sized workloads.  An
// Analysis enumerates each side at most once and shares the slices.

// enumLimit is the dynamic I/O volume up to which the exact enumeration
// runs; past it the pairwise closed-form bound takes over.
const enumLimit = 1 << 20

// Analysis carries one channel's skew computation: built once per
// channel, queried for the minimum skew, then — after the driver picks
// the global maximum across channels — for the queue occupancy at that
// chosen skew.
type Analysis struct {
	out, in *Prog
	exact   bool
	to, ti  []int64 // enumerated times (exact method only)
	countO  int64
	countI  int64
}

// NewAnalysis prepares the skew analysis for one channel pair.  When
// the dynamic I/O volume fits the exact method, both sides' times are
// enumerated here, once.
func NewAnalysis(out, in *Prog) (*Analysis, error) {
	a := &Analysis{out: out, in: in, countO: out.Count(Output), countI: in.Count(Input)}
	if a.countO != a.countI {
		return nil, fmt.Errorf("skew: %d outputs vs %d inputs; send/receive counts must match", a.countO, a.countI)
	}
	if a.countO <= enumLimit {
		a.exact = true
		a.to = out.Times(Output)
		a.ti = in.Times(Input)
	}
	return a, nil
}

// MinSkewStats returns the minimum skew (clamped to ≥ 0) and the
// search statistics, equivalent to the package-level MinSkewStats.
func (a *Analysis) MinSkewStats() (int64, SearchStats, error) {
	if a.exact {
		st := SearchStats{Method: "exact", Ops: a.countO + a.countI}
		s := minSkewTimes(a.to, a.ti)
		if s < 0 {
			s = 0
		}
		return s, st, nil
	}
	b, pairs, err := MinSkewBound(a.out, a.in, BoundPaper)
	if err != nil {
		return 0, SearchStats{Method: "bound"}, err
	}
	total := int64(len(Statements(a.out, Output))) * int64(len(Statements(a.in, Input)))
	st := SearchStats{Method: "bound", Pairs: int64(len(pairs)), Pruned: total - int64(len(pairs))}
	s := b.Ceil()
	if s < 0 {
		s = 0
	}
	return s, st, nil
}

// CheckQueue verifies the queue at the given skew over the cached
// enumeration, equivalent to the package-level CheckQueue.
func (a *Analysis) CheckQueue(skew, capacity int64) (int64, error) {
	to, ti := a.to, a.ti
	if !a.exact {
		// The bound method never enumerated; the occupancy sweep needs
		// the times, so enumerate them now (the pre-existing behaviour
		// of CheckQueue on oversized programs).
		to = a.out.Times(Output)
		ti = a.in.Times(Input)
	}
	occ, err := maxOccupancyTimes(to, ti, skew)
	if err != nil {
		return 0, err
	}
	if occ > capacity {
		return occ, fmt.Errorf("skew: queue needs %d words but the hardware provides %d (queue overflow)", occ, capacity)
	}
	return occ, nil
}

// minSkewTimes is MinSkewExact's core over pre-enumerated, matched
// sequences.
func minSkewTimes(to, ti []int64) int64 {
	if len(to) == 0 {
		return 0
	}
	best := to[0] - ti[0]
	for n := 1; n < len(to); n++ {
		if d := to[n] - ti[n]; d > best {
			best = d
		}
	}
	return best
}

// maxOccupancyTimes is MaxOccupancy's merge sweep over pre-enumerated
// sequences.
func maxOccupancyTimes(to, ti []int64, skew int64) (int64, error) {
	if len(to) != len(ti) {
		return 0, fmt.Errorf("skew: %d outputs vs %d inputs; send/receive counts must match", len(to), len(ti))
	}
	var cur, maxOcc int64
	i, j := 0, 0
	for i < len(to) || j < len(ti) {
		// At equal times the arriving word is latched while another
		// leaves, so count the send first (conservative peak).
		if i < len(to) && (j >= len(ti) || to[i] <= ti[j]+skew) {
			cur++
			if cur > maxOcc {
				maxOcc = cur
			}
			i++
		} else {
			cur--
			if cur < 0 {
				return 0, fmt.Errorf("skew: receive %d executes at cycle %d before its matching send at cycle %d (queue underflow; skew %d too small)",
					j, ti[j]+skew, to[j], skew)
			}
			j++
		}
	}
	return maxOcc, nil
}

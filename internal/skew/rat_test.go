package skew

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestRatBasics(t *testing.T) {
	if got := R(52, 3).Add(R(5, 3).MulI(4)); got.Cmp(RI(24)) != 0 {
		t.Errorf("52/3 + 20/3 = %s, want 24", got)
	}
	if got := R(6, 4); got.Num() != 3 || got.Den() != 2 {
		t.Errorf("6/4 not normalized: %s", got)
	}
	if got := R(3, -6); got.Num() != -1 || got.Den() != 2 {
		t.Errorf("3/-6 = %s, want -1/2", got)
	}
	if R(1, 2).String() != "1/2" || RI(-7).String() != "-7" {
		t.Error("rendering broken")
	}
}

func TestRatCeilFloor(t *testing.T) {
	cases := []struct {
		r          Rat
		ceil, flor int64
	}{
		{R(55, 3), 19, 18},
		{R(-55, 3), -18, -19},
		{RI(4), 4, 4},
		{R(0, 5), 0, 0},
		{R(-1, 2), 0, -1},
	}
	for _, c := range cases {
		if got := c.r.Ceil(); got != c.ceil {
			t.Errorf("Ceil(%s) = %d, want %d", c.r, got, c.ceil)
		}
		if got := c.r.Floor(); got != c.flor {
			t.Errorf("Floor(%s) = %d, want %d", c.r, got, c.flor)
		}
	}
}

func TestRatZeroDenominatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("R(1,0) must panic")
		}
	}()
	R(1, 0)
}

// TestRatQuickProperties cross-checks rational arithmetic against
// math/big.Rat as the oracle.
func TestRatQuickProperties(t *testing.T) {
	type pair struct{ N, D int8 }
	f := func(a, b pair) bool {
		if a.D == 0 || b.D == 0 {
			return true
		}
		ra, rb := R(int64(a.N), int64(a.D)), R(int64(b.N), int64(b.D))
		ba := big.NewRat(int64(a.N), int64(a.D))
		bb := big.NewRat(int64(b.N), int64(b.D))
		same := func(r Rat, want *big.Rat) bool {
			return big.NewRat(r.Num(), r.Den()).Cmp(want) == 0
		}
		if !same(ra.Add(rb), new(big.Rat).Add(ba, bb)) {
			return false
		}
		if !same(ra.Sub(rb), new(big.Rat).Sub(ba, bb)) {
			return false
		}
		if !same(ra.Mul(rb), new(big.Rat).Mul(ba, bb)) {
			return false
		}
		if !same(ra.Neg(), new(big.Rat).Neg(ba)) {
			return false
		}
		if !same(ra.MulI(int64(b.N)), new(big.Rat).Mul(ba, big.NewRat(int64(b.N), 1))) {
			return false
		}
		return ra.Cmp(rb) == ba.Cmp(bb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRatCeilFloorQuick(t *testing.T) {
	f := func(n int16, d int8) bool {
		if d == 0 {
			return true
		}
		r := R(int64(n), int64(d))
		c, fl := r.Ceil(), r.Floor()
		// fl ≤ r ≤ c, and they differ by at most 1.
		if RI(fl).Cmp(r) > 0 || RI(c).Cmp(r) < 0 {
			return false
		}
		if c-fl > 1 {
			return false
		}
		if r.IsInt() && c != fl {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

package skew

// Constructors for the abstract I/O programs of the paper's worked
// examples, shared by the tests and the benchmark harness.

// Fig62 is the straight-line program of Figure 6-2:
//
//	output / input / input / nop / nop / output
//
// with two matched input/output pairs and minimum skew 3 (Table 6-1).
func Fig62() *Prog {
	return Build(Out(), In(), In(), Nop(), Nop(), Out())
}

// Fig64 is the loop program of Figure 6-4:
//
//	nop
//	loop 5 times: input0, input1, nop
//	nop; nop
//	loop 2 times: output0, output1
//	nop; nop
//	loop 2 times: output2, output3, output4, nop, nop
//	nop
//
// whose timing Tables 6-2, 6-3 and 6-4 tabulate; minimum skew 18.
func Fig64() *Prog {
	return Build(
		Nop(),
		Rep(5, In(), In(), Nop()),
		Nop(), Nop(),
		Rep(2, Out(), Out()),
		Nop(), Nop(),
		Rep(2, Out(), Out(), Out(), Nop(), Nop()),
		Nop(),
	)
}

package skew

import (
	"strings"
	"testing"
)

// TestTwoCellTraceFig63 reproduces Figure 6-3 line by line: the two
// cells of the Figure 6-2 program separated by the minimum skew of 3.
func TestTwoCellTraceFig63(t *testing.T) {
	got := TwoCellTrace(Fig62(), 3)
	want := []struct {
		time  int64
		cell1 string
		cell2 string
	}{
		{0, "output_0", ""},
		{1, "input_0", ""},
		{2, "input_1", ""},
		{3, "", "output_0"},
		{4, "", "input_0"},
		{5, "output_1", "input_1"},
		{8, "", "output_1"},
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != len(want)+1 {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want)+1, got)
	}
	for i, w := range want {
		line := lines[i+1]
		fields := strings.Fields(line)
		var c1, c2 string
		switch len(fields) {
		case 2:
			// Either cell1 or cell2, disambiguated by column position.
			if strings.Index(line, fields[1]) < 20 {
				c1 = fields[1]
			} else {
				c2 = fields[1]
			}
		case 3:
			c1, c2 = fields[1], fields[2]
		default:
			t.Fatalf("line %d malformed: %q", i, line)
		}
		if fields[0] != itoa(w.time) || c1 != w.cell1 || c2 != w.cell2 {
			t.Errorf("row %d = %q, want time %d cell1 %q cell2 %q", i, line, w.time, w.cell1, w.cell2)
		}
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

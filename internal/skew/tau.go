package skew

import (
	"fmt"
	"strings"
)

// TimingFunc is the closed-form timing function τ of one I/O statement
// (§6.2.1): it maps the ordinal number n of an operation on the channel
// to the clock cycle the operation executes, and is applicable only on a
// domain of ordinals determined by the statement's loop structure.
type TimingFunc struct {
	V *Vectors
}

// NewTimingFunc builds the timing function for a statement's vectors.
func NewTimingFunc(v *Vectors) *TimingFunc { return &TimingFunc{V: v} }

// sPlus returns Σ_{m≥j} s_m for 0-based level j.
func (tf *TimingFunc) sPlus(j int) int64 {
	var sum int64
	for m := j; m < len(tf.V.S); m++ {
		sum += tf.V.S[m]
	}
	return sum
}

// Eval returns τ(n) and whether n lies in the function's domain.
//
//	τ(n) = Σ_j ( t_j + ⌊(g(j)−s_j)/n_j⌋·l_j ),  g(1)=n,
//	g(j+1) = (g(j)−s_j) mod n_j.
//
// The domain test recovers the per-level iteration number
// i_j = ⌊(g(j)−s_j)/n_j⌋ and requires 0 ≤ i_j < r_j; the innermost
// pseudo-loop level then forces an exact match, so the test accepts
// precisely the ordinals the statement executes.  (The paper's §6.2.1
// formulation bounds g(j) by (r_j−1)·n_j + Σ_{m≥j} s_m, which is
// equivalent for the two-level nests of its examples but too tight for
// deeper nests, where a later sub-iteration raises g(j) above that
// bound.)
func (tf *TimingFunc) Eval(n int64) (int64, bool) {
	v := tf.V
	g := n
	var t int64
	for j := 0; j < v.Depth(); j++ {
		d := g - v.S[j]
		if d < 0 {
			return 0, false
		}
		i := d / v.N[j]
		if i >= v.R[j] {
			return 0, false
		}
		t += v.T[j] + i*v.L[j]
		g = d % v.N[j]
	}
	return t, true
}

// DomainMin returns the smallest ordinal in the domain.
func (tf *TimingFunc) DomainMin() int64 { return tf.sPlus(0) }

// DomainMax returns the largest ordinal in the domain.
func (tf *TimingFunc) DomainMax() int64 {
	v := tf.V
	var n int64
	for j := 0; j < v.Depth(); j++ {
		n += (v.R[j] - 1) * v.N[j]
	}
	return n + tf.sPlus(0)
}

// DomainSize returns the number of ordinals in the domain (the number
// of dynamic executions of the statement).
func (tf *TimingFunc) DomainSize() int64 {
	size := int64(1)
	for _, r := range tf.V.R {
		size *= r
	}
	return size
}

// DomainEach enumerates the ordinals of the domain in increasing order.
func (tf *TimingFunc) DomainEach(f func(n int64) bool) {
	v := tf.V
	var rec func(j int, base int64) bool
	rec = func(j int, base int64) bool {
		if j == v.Depth() {
			return f(base)
		}
		for i := int64(0); i < v.R[j]; i++ {
			if !rec(j+1, base+v.S[j]+i*v.N[j]) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
}

// Contains reports whether ordinal n is in the domain.
func (tf *TimingFunc) Contains(n int64) bool {
	_, ok := tf.Eval(n)
	return ok
}

// ModTerm is one "(…) mod n_j" term of the symbolic form of τ.
type ModTerm struct {
	Coef Rat
	// Level is the 1-based loop level j whose g(j) this term denotes;
	// the chain uses S[0..j−2] and N[0..j−2] of the owning vectors.
	Level int
	// Pinned reports that the owning statement's domain forces g(j) to
	// the single value PinVal (true when every loop from level j inward
	// runs exactly once, which always holds for the innermost
	// pseudo-loop level).
	Pinned bool
	PinVal int64
	// MaxVal is the largest value g(j) can take: n_{j−1} − 1.
	MaxVal int64

	v *Vectors
}

// chainString renders g(j): ((n − s_1) mod n_1 − s_2) mod n_2 ...
func (m ModTerm) chainString() string {
	s := "n"
	for lvl := 1; lvl < m.Level; lvl++ {
		sub := m.v.S[lvl-1]
		if sub != 0 {
			s = fmt.Sprintf("(%s-%d)", s, sub)
		}
		s = fmt.Sprintf("%s mod %d", s, m.v.N[lvl-1])
		if lvl < m.Level-1 {
			s = "(" + s + ")"
		}
	}
	return s
}

// Symbolic is the expanded closed form of τ:
//
//	τ(n) = Const + CoefN·n + Σ ModTerms
//
// together with the statement's domain.  It matches the presentation of
// Table 6-4 in the paper, e.g. 1 + 3/2·n − 1/2·(n mod 2) for I(0) of
// Figure 6-4.
type Symbolic struct {
	Const Rat
	CoefN Rat
	Mods  []ModTerm
	TF    *TimingFunc
}

// Symbolic expands the timing function.
//
//	τ(n) = Σ t_j − Σ (l_j/n_j)·s_j + (l_1/n_1)·n
//	       + Σ_{j≥2} (l_j/n_j − l_{j−1}/n_{j−1})·g(j)
//	       − (l_k/n_k)·g(k+1)
//
// The final term vanishes in vectors produced by Statements because the
// innermost pseudo-loop has n_k = 1, making g(k+1) ≡ 0.
func (tf *TimingFunc) Symbolic() *Symbolic {
	v := tf.V
	k := v.Depth()
	sym := &Symbolic{TF: tf}
	c := RI(0)
	for j := 0; j < k; j++ {
		c = c.Add(RI(v.T[j]))
		c = c.Sub(R(v.L[j], v.N[j]).MulI(v.S[j]))
	}
	sym.Const = c
	sym.CoefN = R(v.L[0], v.N[0])
	for j := 2; j <= k; j++ {
		coef := R(v.L[j-1], v.N[j-1]).Sub(R(v.L[j-2], v.N[j-2]))
		if coef.Sign() == 0 {
			continue
		}
		if v.N[j-2] == 1 {
			continue // g(j) = (…) mod 1 ≡ 0: the term vanishes
		}
		sym.Mods = append(sym.Mods, tf.modTerm(coef, j))
	}
	if v.N[k-1] != 1 {
		// g(k+1) term; cannot arise from Statements but kept for
		// hand-built vectors.
		sym.Mods = append(sym.Mods, tf.modTerm(R(v.L[k-1], v.N[k-1]).Neg(), k+1))
	}
	return sym
}

func (tf *TimingFunc) modTerm(coef Rat, level int) ModTerm {
	v := tf.V
	pinned := true
	for m := level - 1; m < v.Depth(); m++ {
		if v.R[m] != 1 {
			pinned = false
			break
		}
	}
	var pin int64
	if pinned {
		pin = tf.sPlus(level - 1)
	}
	return ModTerm{
		Coef:   coef,
		Level:  level,
		Pinned: pinned,
		PinVal: pin,
		MaxVal: v.N[level-2] - 1,
		v:      v,
	}
}

// Eval evaluates the symbolic form (used to cross-check against the
// recursive Eval).
func (s *Symbolic) Eval(n int64) (int64, bool) {
	if !s.TF.Contains(n) {
		return 0, false
	}
	val := s.Const.Add(s.CoefN.MulI(n))
	for _, m := range s.Mods {
		val = val.Add(m.Coef.MulI(gValue(s.TF.V, n, m.Level)))
	}
	if !val.IsInt() {
		panic("skew: symbolic τ evaluated to a non-integer on its domain")
	}
	return val.Num(), true
}

// gValue computes g(level) for ordinal n: the mod chain over levels
// 1..level−1.
func gValue(v *Vectors, n int64, level int) int64 {
	g := n
	for j := 0; j < level-1; j++ {
		g = (g - v.S[j]) % v.N[j]
	}
	return g
}

// String renders the function like the paper's Table 6-4, e.g.
// "52/3 + 5/3 n - 2/3 (n-4) mod 3".
func (s *Symbolic) String() string {
	var sb strings.Builder
	sb.WriteString(s.Const.String())
	if s.CoefN.Sign() != 0 {
		writeSigned(&sb, s.CoefN, "n")
	}
	for _, m := range s.Mods {
		writeSigned(&sb, m.Coef, m.chainString())
	}
	return sb.String()
}

func writeSigned(sb *strings.Builder, coef Rat, operand string) {
	if coef.Sign() >= 0 {
		sb.WriteString(" + ")
	} else {
		sb.WriteString(" - ")
		coef = coef.Neg()
	}
	if coef.Cmp(RI(1)) != 0 {
		sb.WriteString(coef.String())
		sb.WriteString(" ")
	}
	sb.WriteString(operand)
}

// DomainString renders the domain like the paper's Table 6-4, e.g.
// "4 <= n <= 7 and (n-4) mod 3 = 0".  Each level's g(j) is bounded by
// the slack of its own and all inner levels (identical to the paper's
// rendering for its two-level examples).
func (s *Symbolic) DomainString() string {
	tf := s.TF
	v := tf.V
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d <= n <= %d", tf.DomainMin(), tf.DomainMax())
	for j := 2; j <= v.Depth(); j++ {
		if v.N[j-2] == 1 {
			continue // (…) mod 1 = 0 constrains nothing
		}
		lo := tf.sPlus(j - 1)
		hi := lo
		for m := j - 1; m < v.Depth(); m++ {
			hi += (v.R[m] - 1) * v.N[m]
		}
		chain := ModTerm{Level: j, v: v}.chainString()
		if lo == hi {
			fmt.Fprintf(&sb, " and %s = %d", chain, lo)
		} else {
			fmt.Fprintf(&sb, " and %d <= %s <= %d", lo, chain, hi)
		}
	}
	return sb.String()
}

package skew

import (
	"fmt"
	"strings"
)

// traceEvent is one I/O operation in a rendered trace.
type traceEvent struct {
	out bool
	n   int64
}

func (e traceEvent) String() string {
	if e.out {
		return fmt.Sprintf("output_%d", e.n)
	}
	return fmt.Sprintf("input_%d", e.n)
}

// TwoCellTrace renders two adjacent cells executing with a given skew,
// in the style of the paper's Figure 6-3: one row per cycle with an
// I/O event, the upstream cell's operations on the left and the
// downstream cell's (shifted by the skew) on the right, labelled with
// their dynamic ordinal numbers.
func TwoCellTrace(p *Prog, skewCycles int64) string {
	collect := func(shift int64) map[int64][]traceEvent {
		m := map[int64][]traceEvent{}
		p.EachTime(Output, func(n, t int64) bool {
			m[t+shift] = append(m[t+shift], traceEvent{out: true, n: n})
			return true
		})
		p.EachTime(Input, func(n, t int64) bool {
			m[t+shift] = append(m[t+shift], traceEvent{out: false, n: n})
			return true
		})
		return m
	}
	cell1 := collect(0)
	cell2 := collect(skewCycles)

	join := func(evs []traceEvent) string {
		parts := make([]string, len(evs))
		for i, e := range evs {
			parts[i] = e.String()
		}
		return strings.Join(parts, " ")
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-22s %-22s\n", "Time", "Cell 1", "Cell 2")
	for t := int64(0); t < p.Len+skewCycles; t++ {
		c1, c2 := join(cell1[t]), join(cell2[t])
		if c1 == "" && c2 == "" {
			continue
		}
		fmt.Fprintf(&sb, "%-6d %-22s %-22s\n", t, c1, c2)
	}
	return sb.String()
}

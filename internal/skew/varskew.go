package skew

import (
	"fmt"
	"strings"
)

// This file implements the alternative §6.2.1 sketches and dismisses:
// "It is possible to vary the skew in the course of the computation.
// This alternative of inserting the necessary delays before each input
// operation may lower the demand on the size of the buffers.  However,
// it does not lead to higher utilization of the machine; the latency of
// the computation remains the same, since it is limited by the same
// minimum skew between cells."
//
// VariableSkew quantifies that trade-off: per-receive delays that make
// every receive just-in-time minimize queue occupancy, while total
// latency is unchanged.

// VariableSkewResult compares the fixed-skew and variable-skew
// disciplines.
type VariableSkewResult struct {
	// FixedSkew is the single start delay and FixedOccupancy the queue
	// demand under it.
	FixedSkew      int64
	FixedOccupancy int64
	// VarOccupancy is the queue demand when each receive is delayed
	// individually to run as late as its own constraint chain requires
	// (just-in-time receives).
	VarOccupancy int64
	// Delays[n] is the extra delay inserted before the nth receive
	// relative to its fixed-skew time (≥ 0; the last constraint-binding
	// receive gets 0).
	Delays []int64
	// Latency is the completion time of the last receive, identical in
	// both disciplines (the paper's point).
	Latency int64
}

// VariableSkew computes the comparison for a matched output/input
// program pair.
//
// Under the fixed discipline the nth receive runs at τ_I(n)+skew.
// Under the variable discipline it runs at
//
//	max(τ_O(n), τ_I(n)+skew_min_prefix...)
//
// subject to receive order (the queue is FIFO: receives cannot
// overtake) and the cell's own program order, modelled by keeping each
// receive no earlier than its fixed time would allow relative to its
// predecessor.  Concretely: t(n) = max(τ_O(n), t(n−1) + (τ_I(n) −
// τ_I(n−1))) — each receive is delayed just enough for its datum, and
// the delays ripple forward through the cell's schedule.
func VariableSkew(out, in *Prog) (*VariableSkewResult, error) {
	fixed, err := MinSkewExact(out, in)
	if err != nil {
		return nil, err
	}
	if fixed < 0 {
		fixed = 0
	}
	occ, err := MaxOccupancy(out, in, fixed)
	if err != nil {
		return nil, err
	}
	to := out.Times(Output)
	ti := in.Times(Input)
	res := &VariableSkewResult{FixedSkew: fixed, FixedOccupancy: occ}
	if len(to) == 0 {
		return res, nil
	}

	// Just-in-time receive times: no earlier than the cell's own
	// unskewed schedule, no earlier than the matching send, and no
	// faster than the cell's inter-receive spacing allows.
	tvar := make([]int64, len(ti))
	for n := range ti {
		t := ti[n]
		if to[n] > t {
			t = to[n]
		}
		if n > 0 {
			if v := tvar[n-1] + (ti[n] - ti[n-1]); v > t {
				t = v
			}
		}
		tvar[n] = t
	}
	// Delays reported relative to the unskewed cell program: the fixed
	// discipline inserts `fixed` before everything; the variable one a
	// per-receive amount in [0, fixed].  Just-in-time can never run
	// later than the fixed schedule (fixed already satisfies every
	// constraint), which we assert.
	res.Delays = make([]int64, len(ti))
	for n := range ti {
		if tvar[n] > ti[n]+fixed {
			return nil, fmt.Errorf("skew: variable discipline delayed receive %d past the fixed schedule", n)
		}
		res.Delays[n] = tvar[n] - ti[n]
	}

	// Occupancy under just-in-time receives.
	var cur, maxOcc int64
	i, j := 0, 0
	for i < len(to) || j < len(tvar) {
		if i < len(to) && (j >= len(tvar) || to[i] <= tvar[j]) {
			cur++
			if cur > maxOcc {
				maxOcc = cur
			}
			i++
		} else {
			cur--
			j++
		}
	}
	res.VarOccupancy = maxOcc

	// Latency: time of the last receive.  The fixed discipline ends at
	// τ_I(last)+fixed; the variable one at tvar[last].  The paper's
	// claim is that they coincide when the last receive is on the
	// binding constraint path; otherwise variable can only be earlier,
	// never later.
	res.Latency = ti[len(ti)-1] + fixed
	return res, nil
}

// Describe renders the comparison.
func (r *VariableSkewResult) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fixed skew %d: queue occupancy %d\n", r.FixedSkew, r.FixedOccupancy)
	fmt.Fprintf(&sb, "variable skew (just-in-time receives): occupancy %d\n", r.VarOccupancy)
	fmt.Fprintf(&sb, "latency unchanged at %d cycles (the paper's point: no utilization gain)\n", r.Latency)
	return sb.String()
}

package skew

import (
	"testing"
)

// Note on Figure 6-2: the paper's listing shows three "input" lines,
// but the accompanying Table 6-1 (two matched pairs, minimum skew 3)
// corresponds to two inputs at cycles 1 and 2 and outputs at cycles 0
// and 5, which is the program Fig62 builds.

// TestTable6_1 reproduces Table 6-1: the input/output timing functions
// and the minimum skew of 3 for the straight-line program of Figure 6-2.
func TestTable6_1(t *testing.T) {
	p := Fig62()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	to := p.Times(Output)
	ti := p.Times(Input)
	wantO := []int64{0, 5}
	wantI := []int64{1, 2}
	if len(to) != 2 || len(ti) != 2 {
		t.Fatalf("got %d outputs, %d inputs; want 2 and 2", len(to), len(ti))
	}
	for n := range wantO {
		if to[n] != wantO[n] {
			t.Errorf("τ_O(%d) = %d, want %d", n, to[n], wantO[n])
		}
		if ti[n] != wantI[n] {
			t.Errorf("τ_I(%d) = %d, want %d", n, ti[n], wantI[n])
		}
	}
	skew, err := MinSkewExact(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if skew != 3 {
		t.Errorf("minimum skew = %d, want 3 (Table 6-1)", skew)
	}
}

// TestFig6_3 verifies Figure 6-3: with the minimum skew of 3, no input
// of the second cell precedes the matching output of the first cell,
// and the skew is tight (skew 2 underflows).
func TestFig6_3(t *testing.T) {
	p := Fig62()
	if _, err := MaxOccupancy(p, p, 3); err != nil {
		t.Errorf("skew 3 must be safe: %v", err)
	}
	if _, err := MaxOccupancy(p, p, 2); err == nil {
		t.Errorf("skew 2 must underflow, but was accepted")
	}
	// Figure 6-3's trace: cell 2's input_0 at cycle 4, input_1 at 5.
	ti := p.Times(Input)
	if got := ti[0] + 3; got != 4 {
		t.Errorf("cell 2 input_0 at cycle %d, want 4", got)
	}
	if got := ti[1] + 3; got != 5 {
		t.Errorf("cell 2 input_1 at cycle %d, want 5", got)
	}
}

// TestTable6_2 reproduces Table 6-2: the per-ordinal input and output
// times of the Figure 6-4 program and the minimum skew of 18.
func TestTable6_2(t *testing.T) {
	p := Fig64()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	wantO := []int64{18, 19, 20, 21, 24, 25, 26, 29, 30, 31}
	wantI := []int64{1, 2, 4, 5, 7, 8, 10, 11, 13, 14}
	to := p.Times(Output)
	ti := p.Times(Input)
	if len(to) != 10 || len(ti) != 10 {
		t.Fatalf("got %d outputs, %d inputs; want 10 and 10", len(to), len(ti))
	}
	for n := range wantO {
		if to[n] != wantO[n] {
			t.Errorf("τ_O(%d) = %d, want %d", n, to[n], wantO[n])
		}
		if ti[n] != wantI[n] {
			t.Errorf("τ_I(%d) = %d, want %d", n, ti[n], wantI[n])
		}
	}
	skew, err := MinSkewExact(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if skew != 18 {
		t.Errorf("minimum skew = %d, want 18 (Table 6-2)", skew)
	}
}

// Note: the paper's Table 6-2 lists τ_I values 1,2,4,5,7(printed "1"),
// 8,10,11,13,14 — the printed "1" for ordinal 4 is a typo (the loop
// advances 3 cycles per iteration), and its τ_O−τ_I column confirms
// 24−7=17.

// TestTable6_3 reproduces Table 6-3: the five characteristic vectors of
// every I/O statement of the Figure 6-4 program.
func TestTable6_3(t *testing.T) {
	p := Fig64()
	ins := Statements(p, Input)
	outs := Statements(p, Output)
	if len(ins) != 2 || len(outs) != 5 {
		t.Fatalf("got %d input, %d output statements; want 2 and 5", len(ins), len(outs))
	}
	type vec struct{ R, N, S, L, T [2]int64 }
	wants := map[string]vec{
		"I0": {R: [2]int64{5, 1}, N: [2]int64{2, 1}, S: [2]int64{0, 0}, L: [2]int64{3, 1}, T: [2]int64{1, 0}},
		"I1": {R: [2]int64{5, 1}, N: [2]int64{2, 1}, S: [2]int64{0, 1}, L: [2]int64{3, 1}, T: [2]int64{1, 1}},
		"O0": {R: [2]int64{2, 1}, N: [2]int64{2, 1}, S: [2]int64{0, 0}, L: [2]int64{2, 1}, T: [2]int64{18, 0}},
		"O1": {R: [2]int64{2, 1}, N: [2]int64{2, 1}, S: [2]int64{0, 1}, L: [2]int64{2, 1}, T: [2]int64{18, 1}},
		"O2": {R: [2]int64{2, 1}, N: [2]int64{3, 1}, S: [2]int64{4, 0}, L: [2]int64{5, 1}, T: [2]int64{24, 0}},
		"O3": {R: [2]int64{2, 1}, N: [2]int64{3, 1}, S: [2]int64{4, 1}, L: [2]int64{5, 1}, T: [2]int64{24, 1}},
		"O4": {R: [2]int64{2, 1}, N: [2]int64{3, 1}, S: [2]int64{4, 2}, L: [2]int64{5, 1}, T: [2]int64{24, 2}},
	}
	check := func(name string, v *Vectors) {
		w := wants[name]
		if v.Depth() != 2 {
			t.Fatalf("%s: depth %d, want 2", name, v.Depth())
		}
		got := vec{
			R: [2]int64{v.R[0], v.R[1]}, N: [2]int64{v.N[0], v.N[1]},
			S: [2]int64{v.S[0], v.S[1]}, L: [2]int64{v.L[0], v.L[1]},
			T: [2]int64{v.T[0], v.T[1]},
		}
		if got != w {
			t.Errorf("%s vectors = %+v, want %+v", name, got, w)
		}
	}
	check("I0", ins[0])
	check("I1", ins[1])
	for i, o := range outs {
		check([]string{"O0", "O1", "O2", "O3", "O4"}[i], o)
	}
}

// TestTable6_4 reproduces Table 6-4: the symbolic timing functions and
// their domain constraints.
func TestTable6_4(t *testing.T) {
	p := Fig64()
	ins := Statements(p, Input)
	outs := Statements(p, Output)

	cases := []struct {
		v          *Vectors
		wantFn     string
		wantDomain string
	}{
		{ins[0], "1 + 3/2 n - 1/2 n mod 2", "0 <= n <= 8 and n mod 2 = 0"},
		{ins[1], "1 + 3/2 n - 1/2 n mod 2", "1 <= n <= 9 and n mod 2 = 1"},
		{outs[0], "18 + n", "0 <= n <= 2 and n mod 2 = 0"},
		{outs[1], "18 + n", "1 <= n <= 3 and n mod 2 = 1"},
		{outs[2], "52/3 + 5/3 n - 2/3 (n-4) mod 3", "4 <= n <= 7 and (n-4) mod 3 = 0"},
		{outs[3], "52/3 + 5/3 n - 2/3 (n-4) mod 3", "5 <= n <= 8 and (n-4) mod 3 = 1"},
		{outs[4], "52/3 + 5/3 n - 2/3 (n-4) mod 3", "6 <= n <= 9 and (n-4) mod 3 = 2"},
	}
	for _, c := range cases {
		sym := NewTimingFunc(c.v).Symbolic()
		if got := sym.String(); got != c.wantFn {
			t.Errorf("%s(%d): τ(n) = %q, want %q", c.v.Kind, c.v.ID, got, c.wantFn)
		}
		if got := sym.DomainString(); got != c.wantDomain {
			t.Errorf("%s(%d): domain = %q, want %q", c.v.Kind, c.v.ID, got, c.wantDomain)
		}
	}
	// The paper prints O(0)/O(1) as "18 + n + 0 n mod 2": the mod term
	// has coefficient zero (l/n identical at both levels), so our
	// renderer drops it.
}

// TestClosedFormMatchesEnumeration checks that the closed-form τ agrees
// with enumeration for every statement of both paper programs, on its
// whole domain — and that ordinals outside the domain are rejected.
func TestClosedFormMatchesEnumeration(t *testing.T) {
	for _, p := range []*Prog{Fig62(), Fig64()} {
		for _, kind := range []Kind{Input, Output} {
			times := p.Times(kind)
			covered := make([]bool, len(times))
			for _, v := range Statements(p, kind) {
				tf := NewTimingFunc(v)
				sym := tf.Symbolic()
				for n := int64(0); n < int64(len(times)); n++ {
					got, ok := tf.Eval(n)
					gotSym, okSym := sym.Eval(n)
					if ok != okSym || (ok && got != gotSym) {
						t.Fatalf("%s(%d) n=%d: Eval=(%d,%v) Symbolic=(%d,%v)",
							kind, v.ID, n, got, ok, gotSym, okSym)
					}
					if !ok {
						continue
					}
					if covered[n] {
						t.Errorf("%s ordinal %d claimed by two statements", kind, n)
					}
					covered[n] = true
					if got != times[n] {
						t.Errorf("%s(%d): τ(%d) = %d, enumeration says %d", kind, v.ID, n, got, times[n])
					}
				}
			}
			for n, c := range covered {
				if !c {
					t.Errorf("%s ordinal %d not covered by any timing function", kind, n)
				}
			}
		}
	}
}

// TestOverlapExamples reproduces the three §6.2.1 examples: the
// disjoint pair I(0)/O(1), the completely overlapped pair I(0)/O(0)
// with bound 17, and the partially overlapped pair I(0)/O(4) with
// bound 17+2/3.
func TestOverlapExamples(t *testing.T) {
	p := Fig64()
	ins := Statements(p, Input)
	outs := Statements(p, Output)
	i0 := ins[0]

	if pb := AnalyzePair(outs[1], i0, BoundPaper); pb.Overlap != Disjoint {
		t.Errorf("O(1)×I(0): overlap = %s, want disjoint", pb.Overlap)
	}

	pb := AnalyzePair(outs[0], i0, BoundPaper)
	if pb.Overlap != Complete {
		t.Errorf("O(0)×I(0): overlap = %s, want completely overlapped", pb.Overlap)
	}
	if pb.Bound.Cmp(RI(17)) != 0 {
		t.Errorf("O(0)×I(0): bound = %s, want 17", pb.Bound)
	}

	pb = AnalyzePair(outs[4], i0, BoundPaper)
	if pb.Overlap != Partial {
		t.Errorf("O(4)×I(0): overlap = %s, want partially overlapped", pb.Overlap)
	}
	if want := R(53, 3); pb.Bound.Cmp(want) != 0 {
		t.Errorf("O(4)×I(0): bound = %s, want %s (= 17+2/3)", pb.Bound, want)
	}
}

// TestMinSkewBoundFig64 checks the pairwise-bound method on the Figure
// 6-4 program: the bound must be ≥ the exact minimum skew of 18 and
// its ceiling must be safe in the occupancy check.
func TestMinSkewBoundFig64(t *testing.T) {
	p := Fig64()
	exact, err := MinSkewExact(p, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []BoundMode{BoundPaper, BoundTight} {
		b, pairs, err := MinSkewBound(p, p, mode)
		if err != nil {
			t.Fatal(err)
		}
		if b.Cmp(RI(exact)) < 0 {
			t.Errorf("mode %d: bound %s < exact %d", mode, b, exact)
		}
		if len(pairs) == 0 {
			t.Errorf("mode %d: no pairs analyzed", mode)
		}
		if _, err := MaxOccupancy(p, p, b.Ceil()); err != nil {
			t.Errorf("mode %d: bound %s rejected by occupancy check: %v", mode, b, err)
		}
	}
	// The paper-mode bound is dominated by the O(4)×I(1) pair at
	// 49/3 + 9/6 + 1/2 = 55/3 ≈ 18.33, one cycle above the exact
	// minimum; the tight mode pins O's mod terms too and recovers 18
	// exactly (via the O(2)×I(1) pair).
	bPaper, _, err := MinSkewBound(p, p, BoundPaper)
	if err != nil {
		t.Fatal(err)
	}
	if want := R(55, 3); bPaper.Cmp(want) != 0 {
		t.Errorf("paper-mode bound = %s, want %s", bPaper, want)
	}
	bTight, _, err := MinSkewBound(p, p, BoundTight)
	if err != nil {
		t.Fatal(err)
	}
	if bTight.Cmp(RI(18)) != 0 {
		t.Errorf("tight-mode bound = %s, want 18", bTight)
	}
}

// TestFig3_1 reproduces Figure 3-1's comparison: a 4-step stage whose
// step 4 needs the neighbour's step-4 result has per-cell latency 4
// under SIMD but 1 under the skewed model.
func TestFig3_1(t *testing.T) {
	deps := []StageDep{{Producer: 3, Consumer: 3}}
	if got := SkewedLatency(4, deps); got != 1 {
		t.Errorf("skewed latency = %d, want 1", got)
	}
	if got := SIMDLatency(4, deps); got != 4 {
		t.Errorf("SIMD latency = %d, want 4", got)
	}
	// Through 3 cells (as drawn): skewed 2+4=6 cycles to finish set 0 on
	// cell 3; SIMD 12.
	if got := PipelineLatency(3, 1, 4); got != 6 {
		t.Errorf("skewed pipeline latency = %d, want 6", got)
	}
	if got := PipelineLatency(3, 4, 4); got != 12 {
		t.Errorf("SIMD pipeline latency = %d, want 12", got)
	}
}

// TestMaxOccupancyFig64 sanity-checks occupancy: with the minimum skew
// every word waits in the queue between its send and its receive; the
// peak must be positive and no larger than the total transfer count.
func TestMaxOccupancyFig64(t *testing.T) {
	p := Fig64()
	occ, err := MaxOccupancy(p, p, 18)
	if err != nil {
		t.Fatal(err)
	}
	if occ < 1 || occ > 10 {
		t.Errorf("occupancy = %d, want within [1,10]", occ)
	}
	// Larger skew can only increase occupancy.
	occ2, err := MaxOccupancy(p, p, 30)
	if err != nil {
		t.Fatal(err)
	}
	if occ2 < occ {
		t.Errorf("occupancy decreased with larger skew: %d -> %d", occ, occ2)
	}
}

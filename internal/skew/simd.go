package skew

// This file models the comparison of §3 (Figure 3-1): the latency of a
// pipeline stage under the SIMD computation model versus the skewed
// computation model.
//
// A stage is a block of stageLen one-cycle steps executed by every cell.
// Inter-cell dependences say that step Consumer of a cell uses the
// result of step Producer of its left neighbour, for the same data set.

// StageDep is one inter-cell dependence within a pipeline stage.
// Steps are 0-based.
type StageDep struct {
	Producer int64 // step of the left neighbour producing the value
	Consumer int64 // step of this cell consuming it
}

// SkewedLatency returns the per-cell latency (equivalently, the minimum
// skew between adjacent cells) under the skewed computation model: the
// smallest delay d such that for every dependence, this cell's consumer
// step runs strictly after the neighbour's producer step:
//
//	d + consumer ≥ producer + 1.
//
// With no dependences the cells may run in lockstep (latency 0).
func SkewedLatency(stageLen int64, deps []StageDep) int64 {
	var d int64
	for _, dep := range deps {
		if need := dep.Producer - dep.Consumer + 1; need > d {
			d = need
		}
	}
	if d < 0 {
		d = 0
	}
	_ = stageLen
	return d
}

// SIMDLatency returns the per-cell latency under the SIMD computation
// model.  All cells execute the same step in the same cycle, so a value
// produced by the neighbour during the current stage execution can only
// be consumed in the next full execution of the stage: each data set
// advances one cell per stage, and the latency through each cell is the
// whole stage time (§3).
func SIMDLatency(stageLen int64, deps []StageDep) int64 {
	if len(deps) == 0 {
		return 0
	}
	return stageLen
}

// PipelineLatency returns the total latency for one data set to flow
// through an array of cells cells, given the per-cell latency and the
// stage length: the last cell starts the set after (cells−1) per-cell
// latencies and finishes a stage later.
func PipelineLatency(cells, perCell, stageLen int64) int64 {
	if cells <= 0 {
		return 0
	}
	return (cells-1)*perCell + stageLen
}

// StageStart returns the cycle at which the given cell begins the given
// data set under either model; it is what Figure 3-1 tabulates.
// Under the skewed model a cell starts set d as soon as its own
// pipeline slot frees (stageLen per set) and its dependences allow
// (perCell per upstream cell).  Under the SIMD model every cell begins
// a stage in lockstep, so cell c processes set d in global stage d+c.
func StageStart(simd bool, cell, set, perCell, stageLen int64) int64 {
	if simd {
		return (set + cell) * stageLen
	}
	return cell*perCell + set*stageLen
}

package warp_test

import (
	"strings"
	"testing"

	"warp"
	"warp/internal/workloads"
)

// TestPublicAPI walks the exported surface end to end.
func TestPublicAPI(t *testing.T) {
	prog, err := warp.Compile(workloads.Polynomial(10, 50), warp.Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Cells() != 10 {
		t.Errorf("Cells = %d, want 10", prog.Cells())
	}
	if prog.Skew() < 1 {
		t.Errorf("Skew = %d, want >= 1", prog.Skew())
	}

	params := prog.Params()
	if len(params) != 3 {
		t.Fatalf("Params: %d, want 3", len(params))
	}
	byName := map[string]warp.ParamInfo{}
	for _, p := range params {
		byName[p.Name] = p
	}
	if byName["z"].Out || byName["z"].Size != 50 {
		t.Errorf("param z wrong: %+v", byName["z"])
	}
	if !byName["results"].Out {
		t.Errorf("param results should be out")
	}

	inputs := map[string][]float64{
		"z": make([]float64, 50),
		"c": make([]float64, 10),
	}
	for i := range inputs["z"] {
		inputs["z"][i] = float64(i%7) / 2
	}
	for i := range inputs["c"] {
		inputs["c"][i] = float64(i + 1)
	}
	out, stats, err := prog.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles <= 0 {
		t.Error("no cycles reported")
	}
	ref, err := prog.Interpret(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref["results"] {
		if out["results"][i] != ref["results"][i] {
			t.Fatalf("results[%d]: %v vs %v", i, out["results"][i], ref["results"][i])
		}
	}

	m := prog.Metrics()
	if m.Name != "polynomial" || m.CellInstrs == 0 || m.IUInstrs == 0 || m.W2Lines == 0 {
		t.Errorf("metrics incomplete: %+v", m)
	}
	if m.CompileTime <= 0 {
		t.Error("compile time not measured")
	}
	if !strings.Contains(prog.CellListing(), "recv") {
		t.Error("cell listing empty")
	}
	if !strings.Contains(prog.IUListing(), "sig") {
		t.Error("IU listing empty")
	}
	for _, ch := range []rune{'X', 'Y'} {
		if prog.ChannelTiming(ch) == nil {
			t.Errorf("no timing for channel %c", ch)
		}
	}
	if prog.ChannelTiming('Z') != nil {
		t.Error("bogus channel accepted")
	}
}

// TestCompileErrorsSurface checks that front-end, restriction and
// code-generation errors all reach the API caller.
func TestCompileErrorsSurface(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"syntax", "module", "syntax error"},
		{"semantic", `
module m (a in)
float a[4];
cellprogram (c : 0 : 1)
begin
    function f begin
        float v;
        v := q;
    end
    call f;
end`, "undefined"},
		{"leftward flow", `
module m (a in, b out)
float a[4];
float b[4];
cellprogram (c : 0 : 1)
begin
    function f begin
        float v;
        int i;
        for i := 0 to 3 do begin
            receive (R, X, v, a[i]);
            send (L, X, v, b[i]);
        end;
    end
    call f;
end`, "rightward"},
		{"unbalanced stream", `
module m (a in, b out)
float a[4];
float b[4];
cellprogram (c : 0 : 1)
begin
    function f begin
        float v;
        int i;
        for i := 0 to 3 do
            receive (L, X, v, a[i]);
        send (R, X, v, b[0]);
    end
    call f;
end`, "conserve"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := warp.Compile(c.src, warp.Options{})
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestCellsOverride runs the polynomial program on fewer cells than
// declared: still homogeneous and correct (each cell evaluates a prefix
// of the coefficients; the results differ from the 10-cell ones, but
// simulation and interpretation must still agree... the interpreter
// honors the declared array size, so instead we check the override is
// respected structurally).
func TestCellsOverride(t *testing.T) {
	prog, err := warp.Compile(workloads.Polynomial(10, 20), warp.Options{Cells: 4})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Cells() != 4 {
		t.Errorf("Cells = %d, want 4", prog.Cells())
	}
}

package warp_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"warp"
	"warp/internal/workloads"
)

// polyInputs builds deterministic inputs for the Figure 4-2 polynomial
// program (10 coefficients, n data points).
func polyInputs(n int) map[string][]float64 {
	z := make([]float64, n)
	c := make([]float64, 10)
	for i := range z {
		z[i] = float64(i%7)/4 - 0.5
	}
	for i := range c {
		c[i] = float64(i+1) / 8
	}
	return map[string][]float64{"z": z, "c": c}
}

// TestConcurrentRun verifies the documented contract that one compiled
// *Program is safe for concurrent Run calls: the cache layer hands a
// single *Program to every request for the same content address.  Run
// under -race (CI does) this doubles as the data-race proof.
func TestConcurrentRun(t *testing.T) {
	prog, err := warp.Compile(workloads.PolynomialPaper(), warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := polyInputs(100)
	want, wantStats, err := prog.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	outs := make([]map[string][]float64, goroutines)
	errs := make([]error, goroutines)
	cycles := make([]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out, rs, err := prog.Run(inputs)
			if err != nil {
				errs[g] = err
				return
			}
			outs[g] = out
			cycles[g] = rs.Cycles
		}(g)
	}
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if cycles[g] != wantStats.Cycles {
			t.Errorf("goroutine %d: %d cycles, want %d", g, cycles[g], wantStats.Cycles)
		}
		for name, w := range want {
			got := outs[g][name]
			if len(got) != len(w) {
				t.Fatalf("goroutine %d: %s has %d values, want %d", g, name, len(got), len(w))
			}
			for i := range w {
				if got[i] != w[i] {
					t.Fatalf("goroutine %d: %s[%d] = %v, want %v", g, name, i, got[i], w[i])
				}
			}
		}
	}
}

// TestRunContextCancel proves a cancelled context aborts the run with
// an error wrapping the cause instead of running to completion.
func TestRunContextCancel(t *testing.T) {
	prog, err := warp.Compile(workloads.PolynomialPaper(), warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: the first poll (cycle 0) must see it
	_, _, err = prog.RunContext(ctx, polyInputs(100))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext with cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestRunContextDeadline proves an expired deadline surfaces as
// context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	prog, err := warp.Compile(workloads.PolynomialPaper(), warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err = prog.RunContext(ctx, polyInputs(100))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext with expired deadline: err = %v, want DeadlineExceeded", err)
	}
}

// TestRunMaxCycles proves the configurable livelock guard fires as the
// typed ErrLivelock.
func TestRunMaxCycles(t *testing.T) {
	prog, err := warp.Compile(workloads.PolynomialPaper(), warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = prog.RunWith(warp.RunConfig{MaxCycles: 10}, polyInputs(100))
	if !errors.Is(err, warp.ErrLivelock) {
		t.Fatalf("RunWith(MaxCycles: 10): err = %v, want ErrLivelock", err)
	}
	// With a generous guard the same run completes.
	if _, _, err := prog.RunWith(warp.RunConfig{MaxCycles: 1 << 24}, polyInputs(100)); err != nil {
		t.Fatalf("RunWith(MaxCycles: 1<<24): %v", err)
	}
}

// Command dumpw2 writes the W2 source of each example workload to a
// directory, one <name>.w2 per program.  The examples under examples/
// embed their sources as Go strings (they are parametric generators),
// so CI uses this dump to run `w2c -verify` over every example program
// as a plain file — see scripts/verify-programs.sh.
//
// Usage: go run ./scripts/dumpw2 [-dir w2out]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"warp/internal/workloads"
)

func main() {
	dir := flag.String("dir", "w2out", "output directory")
	symbolic := flag.Bool("symbolic", false, "dump the ${...} symbolic template workloads instead")
	flag.Parse()

	// Sizes match what the examples and tests exercise: big enough to
	// have real loop structure, small enough that CI verification of
	// the whole set stays in seconds.
	programs := map[string]string{
		"polynomial": workloads.Polynomial(10, 100),
		"conv1d":     workloads.Conv1D(9, 64),
		"binop":      workloads.Binop(64, 64),
		"colorseg":   workloads.ColorSeg(32, 32, 10),
		"mandelbrot": workloads.Mandelbrot(64, 4),
		"matmul":     workloads.Matmul(8),
		"fft":        workloads.FFT(64),
	}
	if *symbolic {
		// The ${...} templates behind `w2c -symbolic`; see
		// scripts/symbolic-sweep.sh.
		programs = map[string]string{
			"matmul-sym":     workloads.MatmulSym(),
			"conv1d-sym":     workloads.Conv1DSym(),
			"polynomial-sym": workloads.PolynomialSym(),
		}
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "dumpw2: %v\n", err)
		os.Exit(1)
	}
	for name, src := range programs {
		path := filepath.Join(*dir, name+".w2")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dumpw2: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(path)
	}
}

#!/usr/bin/env bash
# Run the static microcode verifier (w2c -verify) over every W2
# program in testdata/ and every example workload program, in both the
# plain and the software-pipelined configuration.  Any invariant
# violation makes w2c exit 3, which fails this script.
set -euo pipefail
cd "$(dirname "$0")/.."

dump=$(mktemp -d)
trap 'rm -rf "$dump"' EXIT

go build -o "$dump/w2c" ./cmd/w2c
go run ./scripts/dumpw2 -dir "$dump/programs" >/dev/null

status=0
for f in testdata/*.w2 "$dump"/programs/*.w2; do
    for flags in "" "-pipeline"; do
        if out=$("$dump/w2c" -verify $flags "$f" 2>&1); then
            echo "ok   $f $flags: $(echo "$out" | grep -o 'verified:.*')"
        else
            echo "FAIL $f $flags:" >&2
            echo "$out" >&2
            status=1
        fi
    done
done
exit $status

#!/usr/bin/env bash
# Cross-check the two execution backends over the example workloads.
#
# Single-array: `warpsim -crosscheck` compiles each built-in workload
# with verification, runs it on the cycle-accurate simulator AND the
# fast dataflow executor, and exits non-zero unless the modeled cycle
# counts agree exactly and every output word is bit-identical.  Both
# the list-scheduled and the software-pipelined schedules run.
#
# Fabric: each example problem spec is farmed across 1 and 4 arrays on
# the fast backend with -check, which stitches the tiles and compares
# every output element against the full-problem W2 interpreter; the
# summary line must name the fast backend, proving the farm actually
# took the fast path rather than silently falling back to sim.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/warpsim" ./cmd/warpsim

for w in matmul polynomial conv1d binop fft; do
    for flags in "" "-pipeline"; do
        echo "== crosscheck $w $flags =="
        "$bin/warpsim" -crosscheck $flags "$w" | grep "crosscheck: backends agree"
    done
done

for spec in examples/fabric/*.json; do
    for arrays in 1 4; do
        echo "== fabric $spec on $arrays array(s), fast backend =="
        out=$("$bin/warpsim" -backend fast -arrays "$arrays" -check "$spec")
        echo "$out" | grep "fast backend"
        echo "$out" | grep "element-exact"
    done
done

echo "fastexec-check: PASS"

// Command benchgate compares a fresh benchmark run against the
// committed BENCH_*.json baseline and fails on regressions in the
// deterministic counters (simulated cycles, µcode sizes, skew, and
// the fabric's tile counts, aggregate and makespan cycles).
// Wall-clock drift only warns — hosts differ.  Compile experiments
// additionally carry per-phase wall times: a phase whose median grew
// past bench.CompileDriftFactor (2×) draws a warning naming the phase,
// so a scheduler search blowup is attributed, not just noticed;
// -compile-threshold promotes drift past the given factor to a hard
// failure (CI uses it so compile-time blowups cannot merge silently).
// The fastexec experiment is the one wall metric gated hard: its
// sim-over-fast speedup ratio cancels host speed, so falling below
// bench.FastexecSpeedupFloor (5×) fails regardless of thresholds.
//
// Usage:
//
//	go run ./scripts/benchgate.go                      # run suite, gate vs BENCH_10.json
//	go run ./scripts/benchgate.go -fresh bench.json    # gate a pre-built report
//	go run ./scripts/benchgate.go -cycle-threshold 0   # any cycle increase fails (CI)
//	go run ./scripts/benchgate.go -compile-threshold 2 # 2x compile-phase growth fails
//
// Exit status: 0 when the gate passes (warnings allowed), 1 on any
// regression, 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"warp/internal/bench"
)

func main() {
	var (
		baseline = flag.String("baseline", "BENCH_10.json", "committed baseline report")
		fresh    = flag.String("fresh", "", "pre-built fresh report (empty = run the suite now)")
		out      = flag.String("out", "", "also write the fresh report here")
		iters    = flag.Int("iters", 3, "wall-clock iterations when running the suite")
		cycleThr = flag.Float64("cycle-threshold", 0.10, "fail when a deterministic counter regresses by more than this fraction (0 = any increase fails)")
		wallThr  = flag.Float64("wall-threshold", 0.50, "warn when a wall-clock median drifts up by more than this fraction")
		compThr  = flag.Float64("compile-threshold", 0, "fail when a compile phase's median wall time grows past this factor (0 = warn-only past the built-in 2x)")
	)
	flag.Parse()

	base, err := bench.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}

	var freshRep *bench.Report
	if *fresh != "" {
		freshRep, err = bench.ReadFile(*fresh)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: fresh: %v\n", err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("benchgate: running the suite (%d wall-clock iterations per experiment)...\n", *iters)
		freshRep, err = bench.Run(*iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}
	if *out != "" {
		if err := freshRep.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}

	v := bench.Compare(base, freshRep, *cycleThr, *wallThr, *compThr)
	for _, w := range v.Warnings {
		fmt.Printf("benchgate: warning: %s\n", w)
	}
	for _, r := range v.Regressions {
		fmt.Printf("benchgate: REGRESSION: %s\n", r)
	}
	fmt.Printf("benchgate: %d experiments vs %s: %d regressions, %d warnings\n",
		len(freshRep.Experiments), *baseline, len(v.Regressions), len(v.Warnings))
	if !v.OK() {
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

#!/usr/bin/env bash
# Profiler smoke test: compile and run a workload with profiling on,
# then prove the exports are usable by real tooling — the pprof file
# must round-trip through `go tool pprof -top` and the folded file
# must parse as "frame[;frame...] count" lines.  CI uploads the
# artifacts so a red run can be inspected.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-profile-artifacts}"
mkdir -p "$out"

echo "== warpsim -profile -flame -pprof (pipelined polynomial)"
go run ./cmd/warpsim -pipeline -profile \
  -flame "$out/poly.folded" -pprof "$out/poly.pb.gz" \
  polynomial | tee "$out/poly.profile.txt"

grep -q "source profile: polynomial" "$out/poly.profile.txt"
grep -q "scheduler: " "$out/poly.profile.txt"

echo "== pprof round-trip"
go tool pprof -top "$out/poly.pb.gz" | tee "$out/poly.pprof-top.txt"
grep -q "cycles" "$out/poly.pprof-top.txt"

echo "== folded stacks parse"
awk '
  NF < 2 { print "bad folded line " NR ": " $0; exit 1 }
  $NF !~ /^[0-9]+$/ { print "non-numeric count on line " NR ": " $0; exit 1 }
  $0 !~ /;/ { print "no stack separator on line " NR ": " $0; exit 1 }
  { sum += $NF }
  END { if (sum <= 0) { print "folded counts sum to " sum; exit 1 }
        print "ok: " NR " stacks, " sum " cell-cycles" }
' "$out/poly.folded"

echo "== fabric aggregate profile (partitioned matmul)"
go run ./cmd/warpsim -arrays 2 -profile -pprof "$out/fabric.pb.gz" \
  examples/fabric/matmul48.json | tee "$out/fabric.profile.txt"
grep -q "source profile: " "$out/fabric.profile.txt"
go tool pprof -top "$out/fabric.pb.gz" >/dev/null

echo "profile-smoke: PASS"

#!/usr/bin/env bash
# Template-compile every ${...} symbolic example workload, instantiate
# several bound vectors each (on and off the fitted residue lattice,
# plain and pipelined), and differentially check every instantiation
# against a from-scratch concrete compile — w2c -check exits 4 on any
# byte difference, failing this script.  The service-layer template
# cache has its own tests (internal/service); this is the CLI-level
# smoke CI runs.
set -euo pipefail
cd "$(dirname "$0")/.."

dump=$(mktemp -d)
trap 'rm -rf "$dump"' EXIT

go build -o "$dump/w2c" ./cmd/w2c
go run ./scripts/dumpw2 -symbolic -dir "$dump/templates" >/dev/null

bounds_for() {
    case "$1" in
        # The third vector sits off the fitted class's lattice (or in a
        # fresh class), exercising the concrete-fallback / new-class
        # paths, which must be byte-identical too.
        matmul-sym)     echo "n=8 n=20 n=33" ;;
        conv1d-sym)     echo "k=9,n=64 k=5,n=40 k=11,n=96" ;;
        polynomial-sym) echo "ncoef=10,npoints=100 ncoef=6,npoints=48 ncoef=12,npoints=72" ;;
        *) echo "unknown template $1" >&2; exit 1 ;;
    esac
}

status=0
for f in "$dump"/templates/*.w2; do
    name=$(basename "$f" .w2)
    for bounds in $(bounds_for "$name"); do
        for flags in "" "-pipeline"; do
            if out=$("$dump/w2c" -symbolic -bounds "$bounds" -check $flags "$f" 2>&1); then
                echo "ok   $name $bounds $flags: $(echo "$out" | head -1)"
            else
                echo "FAIL $name $bounds $flags:" >&2
                echo "$out" >&2
                status=1
            fi
        done
    done
done
if [ "$status" -eq 0 ]; then
    echo "symbolic-sweep: PASS"
else
    echo "symbolic-sweep: FAIL" >&2
fi
exit $status

#!/usr/bin/env bash
# Smoke test for the warpd daemon: start it, compile and run the
# Figure 4-1 polynomial program over HTTP, assert the second compile is
# a cache hit, and scrape /metrics.  Needs curl and jq.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${WARPD_PORT:-8037}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
trap 'kill "$WARPD_PID" 2>/dev/null || true; wait "$WARPD_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/warpd" ./cmd/warpd
"$TMP/warpd" -addr "$ADDR" -workers 2 &
WARPD_PID=$!

for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if [ "$i" -eq 50 ]; then echo "FAIL: warpd never became healthy" >&2; exit 1; fi
  sleep 0.2
done
echo "healthz: ok"

jq -Rs '{source: .}' testdata/polynomial.w2 > "$TMP/compile.json"

CACHED1=$(curl -sf -X POST --data @"$TMP/compile.json" "$BASE/compile" | jq -r .cached)
[ "$CACHED1" = "false" ] || { echo "FAIL: first compile reported cached=$CACHED1" >&2; exit 1; }
echo "compile #1: miss (compiled)"

CACHED2=$(curl -sf -X POST --data @"$TMP/compile.json" "$BASE/compile" | jq -r .cached)
[ "$CACHED2" = "true" ] || { echo "FAIL: second compile reported cached=$CACHED2, want a cache hit" >&2; exit 1; }
echo "compile #2: cache hit"

jq -Rs '{source: ., inputs: {z: [range(100)|./25], c: [range(10)|./8]}}' \
  testdata/polynomial.w2 > "$TMP/run.json"
RUN=$(curl -sf -X POST --data @"$TMP/run.json" "$BASE/run")
CYCLES=$(echo "$RUN" | jq -r .stats.cycles)
NOUT=$(echo "$RUN" | jq -r '.outputs.results | length')
[ "$CYCLES" -gt 0 ] && [ "$NOUT" -eq 100 ] || {
  echo "FAIL: run returned cycles=$CYCLES, |results|=$NOUT" >&2; exit 1; }
echo "run: $CYCLES cycles, $NOUT outputs"

# The flight recorder saw all three requests, newest first, and the run
# request carries a full span tree: request stages plus the per-phase
# compile spans under the cache lookup (the run compiled nothing — its
# program was already cached — so the phases live on the first compile).
DEBUG=$(curl -sf "$BASE/debug/requests")
NREQ=$(echo "$DEBUG" | jq '.requests | length')
[ "$NREQ" -eq 3 ] || { echo "FAIL: /debug/requests holds $NREQ records, want 3" >&2; exit 1; }
echo "$DEBUG" | jq -e '[.requests[0].spans[].name] | contains(["request","cache","queue-wait","run"])' >/dev/null ||
  { echo "FAIL: run request span tree lacks the request stages" >&2; exit 1; }
echo "$DEBUG" | jq -e '[.requests[].spans[].name] | contains(["parse","cellgen"])' >/dev/null ||
  { echo "FAIL: no request recorded per-phase compile spans" >&2; exit 1; }
echo "$DEBUG" | jq -e '.requests[0].total_ns > 0 and ([.requests[0].spans[].end_ns] | min >= 0)' >/dev/null ||
  { echo "FAIL: run request spans are not closed with a positive total" >&2; exit 1; }
echo "$DEBUG" | jq -e '.requests | all(.outcome == "ok")' >/dev/null ||
  { echo "FAIL: some recorded request did not succeed" >&2; exit 1; }
RUNID=$(echo "$DEBUG" | jq -r '.requests[0].id')
curl -sf "$BASE/debug/requests/$RUNID/trace" | jq -e '.traceEvents | length > 0' >/dev/null ||
  { echo "FAIL: per-request Chrome trace download is not valid JSON" >&2; exit 1; }
echo "debug/requests: ok ($NREQ records, trace download ok)"

# The run response and the flight record both carry the backend
# decision audit: which executor ran, why, and the cost model's
# prediction beside the measured wall.
echo "$RUN" | jq -e '.decision.backend != null and .decision.reason != null and .decision.actual_wall_ns > 0' >/dev/null ||
  { echo "FAIL: run response has no backend decision audit" >&2; exit 1; }
curl -sf "$BASE/debug/requests/$RUNID" | jq -e '.decision.reason != null' >/dev/null ||
  { echo "FAIL: /debug/requests/{id} record has no decision" >&2; exit 1; }
echo "decision: $(echo "$RUN" | jq -r '"backend \(.decision.backend) (\(.decision.reason))"')"

# Live progress: launch a partitioned matmul (25 tiles of the 8-cell
# kernel — long enough to stream) and attach an SSE watcher mid-run.
# The stream must deliver at least one event and terminate with an
# `event: done` frame; this holds even if the run wins the race and
# finishes first, because a late subscriber gets the terminal snapshot
# as its lone event.
jq -Rs '{source: ., inputs: {a: [range(1600)|./40], bmat: [range(1600)|./41]},
         partition: {workload: "matmul", m: 40, k: 40, n: 40}}' \
  testdata/matmul8.w2 > "$TMP/fabric.json"
curl -sf -X POST --data @"$TMP/fabric.json" "$BASE/run" >/dev/null &
RUN_BG=$!
PROGID=""
for i in $(seq 1 100); do
  PROGID=$(curl -sf "$BASE/debug/progress" | jq -r '[.progress[] | select(.done | not)] | .[0].id // empty')
  if [ -n "$PROGID" ]; then break; fi
  # The run may already be over; take any tracked entry.
  PROGID=$(curl -sf "$BASE/debug/progress" | jq -r '.progress[-1].id // empty')
  if [ -n "$PROGID" ] && ! kill -0 "$RUN_BG" 2>/dev/null; then break; fi
  sleep 0.05
done
[ -n "$PROGID" ] || { echo "FAIL: run never appeared in /debug/progress" >&2; exit 1; }
SSE=$(curl -sf -N --max-time 30 "$BASE/debug/requests/$PROGID/progress")
wait "$RUN_BG" || { echo "FAIL: background partitioned run failed" >&2; exit 1; }
NDATA=$(echo "$SSE" | grep -c '^data: ' || true)
[ "$NDATA" -ge 1 ] || { echo "FAIL: SSE stream delivered $NDATA events, want >= 1" >&2; exit 1; }
echo "$SSE" | grep -q '^event: done' ||
  { echo "FAIL: SSE stream did not terminate with a done event" >&2; exit 1; }
echo "$SSE" | tail -n 2 | grep -q '"done":true' ||
  { echo "FAIL: terminal SSE payload is not marked done" >&2; exit 1; }
echo "progress: SSE streamed $NDATA event(s), terminal done frame ok"

METRICS=$(curl -sf "$BASE/metrics")
echo "$METRICS" | grep -q 'warpd_compile_requests_total{result="hit"} 1' ||
  { echo "FAIL: /metrics does not report the compile cache hit" >&2; exit 1; }
echo "$METRICS" | grep -q 'warpd_run_requests_total{result="ok"}' ||
  { echo "FAIL: /metrics does not report the completed run" >&2; exit 1; }
echo "$METRICS" | grep -q '^warpd_sim_cycles_total [1-9]' ||
  { echo "FAIL: /metrics does not aggregate simulated cycles" >&2; exit 1; }
echo "$METRICS" | grep -q 'warpd_run_seconds_bucket{' ||
  { echo "FAIL: /metrics has no run-latency histogram buckets" >&2; exit 1; }
echo "$METRICS" | grep -q 'warpd_queue_wait_seconds_count' ||
  { echo "FAIL: /metrics has no queue-wait histogram" >&2; exit 1; }
echo "$METRICS" | grep -q 'warpd_decision_total{' ||
  { echo "FAIL: /metrics has no backend decision counters" >&2; exit 1; }
echo "$METRICS" | grep -q 'warpd_prediction_error_ratio_count{' ||
  { echo "FAIL: /metrics has no prediction-error series" >&2; exit 1; }
echo "metrics: ok (incl. latency histograms + decision audit)"

kill -TERM "$WARPD_PID"
wait "$WARPD_PID"
echo "warpd smoke: PASS"

package warp_test

// Backend-selection contract tests at the public API surface: the
// verified fast executor and the cycle-accurate simulator must be
// interchangeable (bit-identical outputs, exactly equal modeled
// cycles), selection must be explicit in RunStats.Backend, a forced
// fast run on an unverified program must fail loudly, and both
// backends must honor context deadlines at a bounded stride.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"warp"
	"warp/internal/workloads"
)

// matmulInputs builds deterministic inputs for workloads.Matmul(n).
func matmulInputs(n int) map[string][]float64 {
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%13)/4 - 1.5
		b[i] = float64((i*7)%11)/8 - 0.5
	}
	return map[string][]float64{"a": a, "bmat": b}
}

// TestBackendEquivalence pins the central contract: for a verified
// program, an explicit sim run and an explicit fast run produce
// bit-identical outputs and exactly equal cycle counts, and each run
// records which backend produced it.
func TestBackendEquivalence(t *testing.T) {
	const n = 8
	prog, err := warp.Compile(workloads.Matmul(n), warp.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	inputs := matmulInputs(n)

	simOut, simStats, err := prog.RunWith(warp.RunConfig{Backend: warp.BackendSim}, inputs)
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	if simStats.Backend != warp.BackendSim {
		t.Errorf("sim run recorded backend %q", simStats.Backend)
	}

	fastOut, fastStats, err := prog.RunWith(warp.RunConfig{Backend: warp.BackendFast}, inputs)
	if err != nil {
		t.Fatalf("fast run: %v", err)
	}
	if fastStats.Backend != warp.BackendFast {
		t.Errorf("fast run recorded backend %q", fastStats.Backend)
	}

	if fastStats.Cycles != simStats.Cycles {
		t.Errorf("cycles diverge: fast %d, sim %d", fastStats.Cycles, simStats.Cycles)
	}
	if fastStats.AddUtilization != simStats.AddUtilization || fastStats.MulUtilization != simStats.MulUtilization {
		t.Errorf("utilization diverges: fast %v/%v, sim %v/%v",
			fastStats.AddUtilization, fastStats.MulUtilization,
			simStats.AddUtilization, simStats.MulUtilization)
	}
	for name, sv := range simOut {
		fv := fastOut[name]
		if len(fv) != len(sv) {
			t.Fatalf("%s: fast has %d values, sim %d", name, len(fv), len(sv))
		}
		for i := range sv {
			if math.Float64bits(fv[i]) != math.Float64bits(sv[i]) {
				t.Fatalf("%s[%d] diverges: fast %v, sim %v", name, i, fv[i], sv[i])
			}
		}
	}

	// The reference answer, for good measure.
	want := workloads.MatmulRef(inputs["a"], inputs["bmat"], n)
	for i, w := range want {
		if math.Abs(fastOut["c"][i]-w) > 1e-9 {
			t.Fatalf("c[%d] = %v, reference %v", i, fastOut["c"][i], w)
		}
	}
}

// TestBackendAuto: a verified program with no observability requested
// runs fast; requesting a source profile, or compiling without Verify,
// falls back to the simulator.
func TestBackendAuto(t *testing.T) {
	verified, err := warp.Compile(workloads.Matmul(8), warp.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	inputs := matmulInputs(8)

	if _, rs, err := verified.Run(inputs); err != nil {
		t.Fatal(err)
	} else if rs.Backend != warp.BackendFast {
		t.Errorf("verified auto run used backend %q, want %q", rs.Backend, warp.BackendFast)
	}
	if _, rs, err := verified.RunWith(warp.RunConfig{Profile: true}, inputs); err != nil {
		t.Fatal(err)
	} else if rs.Backend != warp.BackendSim {
		t.Errorf("profiled auto run used backend %q, want %q", rs.Backend, warp.BackendSim)
	}

	unverified, err := warp.Compile(workloads.Matmul(8), warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, rs, err := unverified.Run(inputs); err != nil {
		t.Fatal(err)
	} else if rs.Backend != warp.BackendSim {
		t.Errorf("unverified auto run used backend %q, want %q", rs.Backend, warp.BackendSim)
	}
}

// TestBackendFastUnverified: demanding the fast backend for a program
// compiled without Verify fails with ErrUnverified rather than
// silently degrading to the simulator.
func TestBackendFastUnverified(t *testing.T) {
	prog, err := warp.Compile(workloads.Matmul(8), warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = prog.RunWith(warp.RunConfig{Backend: warp.BackendFast}, matmulInputs(8))
	if !errors.Is(err, warp.ErrUnverified) {
		t.Fatalf("error %v does not wrap warp.ErrUnverified", err)
	}
}

// TestBackendUnknown rejects backend names outside {auto, sim, fast}.
func TestBackendUnknown(t *testing.T) {
	prog, err := warp.Compile(workloads.Matmul(8), warp.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := prog.RunWith(warp.RunConfig{Backend: "turbo"}, matmulInputs(8)); err == nil {
		t.Fatal("unknown backend name accepted")
	}
}

// TestBackendDeadline is the cancellation-granularity regression test:
// a 1ms deadline must cancel a large matmul on BOTH backends — each
// polls its context at a bounded stride, so an expired deadline stops
// the run at the next poll rather than after the full workload.
func TestBackendDeadline(t *testing.T) {
	const n = 16
	prog, err := warp.Compile(workloads.Matmul(n), warp.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	inputs := matmulInputs(n)
	for _, backend := range []string{warp.BackendSim, warp.BackendFast} {
		t.Run(backend, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			defer cancel()
			// Let the deadline lapse before launching, so the abort is
			// deterministic regardless of machine speed: the backend's
			// first context poll must see the expiry and stop.
			<-ctx.Done()
			_, _, err := prog.RunWith(warp.RunConfig{Context: ctx, Backend: backend}, inputs)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("backend %s: error %v does not wrap context.DeadlineExceeded", backend, err)
			}
		})
	}
}

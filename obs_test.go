package warp_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"warp"
	"warp/internal/workloads"
)

// obsJobs are the workloads whose cycle counts the observability layer
// must not perturb.  The counts are the pre-instrumentation baselines:
// the simulator is deterministic, so any drift means the tracing hooks
// changed machine behavior instead of just watching it.
var obsJobs = []struct {
	name   string
	src    string
	pipe   bool
	cycles int64
	inputs func() map[string][]float64
}{
	{"polynomial-plain", workloads.Polynomial(10, 100), false, 1322, func() map[string][]float64 {
		return map[string][]float64{"z": make([]float64, 100), "c": make([]float64, 10)}
	}},
	{"polynomial-pipelined", workloads.Polynomial(10, 100), true, 225, func() map[string][]float64 {
		return map[string][]float64{"z": make([]float64, 100), "c": make([]float64, 10)}
	}},
	{"conv1d-pipelined", workloads.Conv1D(9, 512), true, 634, func() map[string][]float64 {
		return map[string][]float64{"x": make([]float64, 512), "w": make([]float64, 9)}
	}},
	{"matmul10", workloads.Matmul(10), true, 719, func() map[string][]float64 {
		return map[string][]float64{"a": make([]float64, 100), "bmat": make([]float64, 100)}
	}},
}

// TestObsNeutral checks that observability is behavior-neutral: cycle
// counts match the pre-obs baselines with tracing off, and attaching a
// full Chrome tracer changes neither the cycle count nor the outputs.
func TestObsNeutral(t *testing.T) {
	for _, j := range obsJobs {
		t.Run(j.name, func(t *testing.T) {
			prog, err := warp.Compile(j.src, warp.Options{Pipeline: j.pipe})
			if err != nil {
				t.Fatal(err)
			}
			out, stats, err := prog.Run(j.inputs())
			if err != nil {
				t.Fatal(err)
			}
			if stats.Cycles != j.cycles {
				t.Errorf("cycles = %d, want %d (baseline)", stats.Cycles, j.cycles)
			}
			if stats.Profile == nil {
				t.Fatal("Run did not attach a profile")
			}

			var buf bytes.Buffer
			tout, tstats, err := prog.RunTraced(j.inputs(), &buf)
			if err != nil {
				t.Fatal(err)
			}
			if tstats.Cycles != stats.Cycles {
				t.Errorf("tracing changed cycles: %d vs %d", tstats.Cycles, stats.Cycles)
			}
			if tstats.MaxQueue != stats.MaxQueue || tstats.MaxQueueAt != stats.MaxQueueAt {
				t.Errorf("tracing changed queue stats: %d@%s vs %d@%s",
					tstats.MaxQueue, tstats.MaxQueueAt, stats.MaxQueue, stats.MaxQueueAt)
			}
			for name, want := range out {
				got := tout[name]
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("tracing changed output %s[%d]: %v vs %v", name, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestObsProfileConsistent cross-checks the always-on profile against
// the run: per-cell cycles are fully attributed (busy + stalls + skew
// lead-in + drain covers every cycle of the run past the IU lead), and
// the derived MaxQueue names a real queue within the hardware bound.
func TestObsProfileConsistent(t *testing.T) {
	prog, err := warp.Compile(workloads.Matmul(10), warp.Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := prog.Run(map[string][]float64{
		"a": make([]float64, 100), "bmat": make([]float64, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := stats.Profile
	if p.Cells != prog.Cells() || p.Cycles != stats.Cycles {
		t.Fatalf("profile geometry %d cells/%d cycles, run %d/%d",
			p.Cells, p.Cycles, prog.Cells(), stats.Cycles)
	}
	for i := range p.Cell {
		c := &p.Cell[i]
		covered := c.SkewLead + c.Active() + c.Drain
		span := p.Cycles - p.Lead
		if covered != span {
			t.Errorf("cell %d: %d cycles attributed, run spans %d after lead", i, covered, span)
		}
		if c.Busy == 0 || c.AddOps == 0 || c.MulOps == 0 {
			t.Errorf("cell %d: no work recorded: %+v", i, c)
		}
		if in := c.Inner(); in == nil || in.Cycles == 0 {
			t.Errorf("cell %d: no innermost-loop attribution", i)
		}
	}
	if stats.MaxQueue <= 0 || stats.MaxQueueAt == "" {
		t.Errorf("MaxQueue not derived: %d at %q", stats.MaxQueue, stats.MaxQueueAt)
	}
	found := false
	for _, q := range p.Queues {
		if q.Name == stats.MaxQueueAt && q.HighWater == stats.MaxQueue {
			found = true
		}
	}
	if !found {
		t.Errorf("MaxQueueAt %q does not match any queue profile", stats.MaxQueueAt)
	}
	if len(p.Phases) == 0 {
		t.Error("no compiler phases attached to the run profile")
	}
}

// TestRunTracedJSON is the acceptance check on the trace exporter: the
// file parses as JSON and every event carries the ph, ts, pid and tid
// fields the Perfetto/Chrome trace viewers require.
func TestRunTracedJSON(t *testing.T) {
	prog, err := warp.Compile(workloads.Matmul(10), warp.Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _, err = prog.RunTraced(map[string][]float64{
		"a": make([]float64, 100), "bmat": make([]float64, 100),
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 1000 {
		t.Fatalf("suspiciously small trace: %d events", len(doc.TraceEvents))
	}
	phases := 0
	for i, raw := range doc.TraceEvents {
		var ev struct {
			Name *string        `json:"name"`
			Ph   *string        `json:"ph"`
			TS   *float64       `json:"ts"`
			PID  *int           `json:"pid"`
			TID  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("event %d: %v: %s", i, err, raw)
		}
		if ev.Name == nil || ev.Ph == nil || ev.TS == nil || ev.PID == nil || ev.TID == nil {
			t.Fatalf("event %d missing a required field (name/ph/ts/pid/tid): %s", i, raw)
		}
		if *ev.Ph == "X" && *ev.PID == 2 {
			phases++
		}
	}
	if phases == 0 {
		t.Error("no compiler-phase slices on pid 2")
	}

	rep := prog.PhaseReport()
	for _, want := range []string{"parse", "cellgen", "skew", "iugen", "hostgen", "total"} {
		if !strings.Contains(rep, want) {
			t.Errorf("phase report missing %q:\n%s", want, rep)
		}
	}
}

package warp

import (
	"context"
	"fmt"

	"warp/internal/driver"
	"warp/internal/fabric"
	"warp/internal/prof"
)

// Problem is an oversized workload for RunPartitioned — one whose
// operands exceed what a single compiled array kernel accepts.
// Construct one with MatmulProblem or Conv1DProblem.
type Problem struct {
	kind string
	mm   fabric.Matmul
	cv   fabric.Conv1D
}

// MatmulProblem describes the matrix product C = A×B with A m×k and
// B k×n, both row-major.  RunPartitioned decomposes it into the
// T×T-block tiles of the compiled matmul kernel (T = its array size),
// zero-padding edge blocks, and accumulates each output block's
// reduction partials in a fixed ascending order.
func MatmulProblem(m, k, n int, a, b []float64) Problem {
	return Problem{kind: "matmul", mm: fabric.Matmul{M: m, K: k, N: n, A: a, B: b}}
}

// Conv1DProblem describes the 1-D convolution of x with the kernel:
// out[i] = Σ_j kernel[j]·x[i+j].  RunPartitioned slices x into
// overlapping windows of the compiled conv kernel's input size — the
// kernel−1-point halo at each boundary — so every output element is
// computed whole inside one tile and the partitioned result is
// bit-exact against the un-partitioned program for arbitrary data.
func Conv1DProblem(kernel, x []float64) Problem {
	return Problem{kind: "conv1d", cv: fabric.Conv1D{Kernel: kernel, X: x}}
}

// FabricStats aggregates a partitioned run: tile dispatch counters
// (dispatched, retried, failed), the summed machine time of all tiles,
// the modeled N-array makespan and the resulting deterministic speedup
// over a single array, the staged host I/O traffic, and the
// cycle-weighted utilization profile.  See fabric.Stats for the field
// documentation.
type FabricStats = fabric.Stats

// TileError is the structured per-tile failure RunPartitioned returns
// when one tile exhausts its bounded attempts: the tile index, the
// attempt count, and the final underlying error (errors.Is sees
// through it, e.g. to ErrLivelock).  Extract it with errors.As.
type TileError = fabric.TileError

// RunPartitioned executes an oversized problem by farming array-sized
// tiles of it across cfg.Arrays concurrent instances of the simulated
// machine, all running this compiled program as the tile kernel.  The
// partitioner sizes tiles against the kernel's array geometry and the
// cell-memory budget; the farm double-buffers host I/O (each array's
// next tile is staged while the current one runs), bounds each tile
// attempt with cfg.TileDeadline, retries livelocked tiles up to
// cfg.TileRetries times, and fails the job with a *TileError — without
// hanging — when a tile exhausts its attempts.  The stitched output is
// keyed by the kernel's out parameter, mirroring Run, and is a pure
// function of the problem: identical across runs regardless of tile
// completion order.
func (p *Program) RunPartitioned(cfg RunConfig, prob Problem) (map[string][]float64, *FabricStats, error) {
	pl, err := p.partitionPlan(cfg, prob)
	if err != nil {
		return nil, nil, err
	}
	run := func(ctx context.Context, t fabric.Tile, in map[string][]float64) ([]float64, fabric.TileStats, error) {
		// Every tile worker shares the kernel's one cached fast plan, so
		// a verified kernel runs the whole farm at dataflow speed.
		out, stats, err := driver.RunWith(p.c, in, driver.RunOptions{
			Ctx:       ctx,
			Recorder:  p.rec,
			MaxCycles: cfg.MaxCycles,
			Profile:   cfg.Profile,
			Backend:   cfg.Backend,
		})
		if err != nil {
			return nil, fabric.TileStats{}, err
		}
		ts := fabric.TileStats{Cycles: stats.Cycles, Backend: stats.Backend, Decision: stats.Decision}
		if stats.Obs != nil {
			ts.Summary = stats.Obs.Summarize()
			if cfg.Profile {
				ts.Source = prof.BuildSource(p.c.Debug, stats.Obs.PC, stats.Cycles)
			}
		}
		return out[pl.OutName()], ts, nil
	}
	out, stats, err := fabric.Run(cfg.Context, pl, fabric.Config{
		Arrays:   cfg.Arrays,
		Deadline: cfg.TileDeadline,
		Retries:  cfg.TileRetries,
		Progress: cfg.Progress,
	}, run)
	if stats != nil {
		stats.Decision = jobDecision(stats)
	}
	if err != nil {
		return nil, stats, err
	}
	if cfg.Progress != nil && stats != nil {
		cfg.Progress(ProgressUpdate{
			Cycles:    stats.AggregateCycles,
			TilesDone: stats.Tiles - stats.Failed,
			Tiles:     stats.Tiles,
			Done:      true,
		})
	}
	return map[string][]float64{pl.OutName(): out}, stats, nil
}

// jobDecision lifts the per-tile backend decision to the job: the
// cycle/op inputs stay per-tile (each matches what the simulator counts
// for one tile), the predicted walls scale by the list-scheduled wave
// count (tiles over arrays, rounded up), and the actual wall is the
// job's.
func jobDecision(stats *FabricStats) *Decision {
	td := stats.TileDecision
	if td == nil {
		return nil
	}
	d := *td
	arrays := stats.Arrays
	if arrays < 1 {
		arrays = 1
	}
	waves := int64((stats.Tiles + arrays - 1) / arrays)
	d.PredictedSimWallNS *= waves
	d.PredictedFastWallNS *= waves
	d.ActualWallNS = stats.WallNS
	return &d
}

// partitionPlan builds the tile plan for prob against this program's
// kernel shape and the configured memory budget.
func (p *Program) partitionPlan(cfg RunConfig, prob Problem) (*fabric.Plan, error) {
	var tp fabric.TileProgram
	tp.Cells = p.c.Cells
	for _, prm := range p.Params() {
		if prm.Out {
			tp.Out = fabric.Param{Name: prm.Name, Size: prm.Size}
		} else {
			tp.In = append(tp.In, fabric.Param{Name: prm.Name, Size: prm.Size})
		}
	}
	lim := fabric.DefaultLimits(p.c.Cells)
	if cfg.TileMemBudget > 0 {
		lim.CellMemWords = cfg.TileMemBudget
	}
	switch prob.kind {
	case "matmul":
		return fabric.PlanMatmul(prob.mm, tp, lim)
	case "conv1d":
		return fabric.PlanConv1D(prob.cv, tp, lim)
	}
	return nil, fmt.Errorf("warp: zero Problem; use MatmulProblem or Conv1DProblem")
}

package warp_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"warp"
	"warp/internal/interp"
	"warp/internal/w2"
	"warp/internal/workloads"
)

// oracle runs a W2 source under the reference interpreter — the
// programmer's-model semantics of the full, un-partitioned problem,
// independent of the compiler and simulator.
func oracle(t *testing.T, src string, in map[string][]float64) map[string][]float64 {
	t.Helper()
	mod, err := w2.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := w2.Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	out, err := interp.Run(info, in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunPartitionedMatmulOracle is the acceptance path: a 25×25×25
// matmul — too large for the ten-cell kernel in every dimension, and
// not a multiple of the tile side — partitioned across 4 arrays, each
// running the real cycle-accurate simulator, element-exact against the
// interpreter oracle evaluating the whole problem at once.
func TestRunPartitionedMatmulOracle(t *testing.T) {
	const m, k, n, tile = 25, 25, 25, 10
	prog, err := warp.Compile(workloads.Matmul(tile), warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := workloads.LargeMatmulData(m, k, n, 17)
	out, stats, err := prog.RunPartitioned(warp.RunConfig{Arrays: 4}, warp.MatmulProblem(m, k, n, a, b))
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(t, workloads.MatmulRect(m, k, n), map[string][]float64{"a": a, "bmat": b})["c"]
	got := out["c"]
	if len(got) != m*n {
		t.Fatalf("got %d output elements, want %d", len(got), m*n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("c[%d] = %v, oracle says %v", i, got[i], want[i])
		}
	}
	if stats.Tiles != 27 || stats.Failed != 0 { // ⌈25/10⌉³
		t.Fatalf("stats %+v, want 27 clean tiles", stats)
	}
	if stats.Arrays != 4 || stats.Speedup < 2 {
		t.Fatalf("modeled speedup %.2f on %d arrays, want ≥2 on 4", stats.Speedup, stats.Arrays)
	}
	if stats.AggregateCycles <= 0 || stats.MakespanCycles <= 0 || stats.AddUtil <= 0 {
		t.Fatalf("profile not aggregated: %+v", stats)
	}
}

// TestRunPartitionedConvOracle: a 300-point convolution through a
// 64-point-window kernel on 9 cells, haloed tiles across 4 arrays,
// bit-exact against the full-signal oracle.
func TestRunPartitionedConvOracle(t *testing.T) {
	const nx, kw, window = 300, 9, 64
	prog, err := warp.Compile(workloads.Conv1D(kw, window), warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x, w := workloads.LargeConv1DData(nx, kw, 23)
	out, stats, err := prog.RunPartitioned(warp.RunConfig{Arrays: 4}, warp.Conv1DProblem(w, x))
	if err != nil {
		t.Fatal(err)
	}
	// The full-problem oracle's first nx−kw+1 outputs are the valid
	// convolution; the partitioned run returns exactly those.
	want := oracle(t, workloads.Conv1D(kw, nx), map[string][]float64{"x": x, "w": w})["results"]
	got := out["results"]
	if len(got) != nx-kw+1 {
		t.Fatalf("got %d outputs, want %d", len(got), nx-kw+1)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("results[%d] = %v, oracle says %v", i, got[i], want[i])
		}
	}
	if stats.Failed != 0 || stats.Tiles < 4 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestRunPartitionedBudget: shrinking the tile memory budget below the
// kernel's needs must fail planning, not simulate garbage.
func TestRunPartitionedBudget(t *testing.T) {
	prog, err := warp.Compile(workloads.Matmul(4), warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := workloads.LargeMatmulData(8, 8, 8, 1)
	_, _, err = prog.RunPartitioned(warp.RunConfig{Arrays: 2, TileMemBudget: 3},
		warp.MatmulProblem(8, 8, 8, a, b))
	if err == nil {
		t.Fatal("partitioner accepted a kernel that overflows the tile memory budget")
	}
}

// TestRunPartitionedCancel: a cancelled job context aborts the farm
// promptly with the context's error.
func TestRunPartitionedCancel(t *testing.T) {
	prog, err := warp.Compile(workloads.Matmul(4), warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const d = 40
	a, b := workloads.LargeMatmulData(d, d, d, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, err = prog.RunPartitioned(warp.RunConfig{Context: ctx, Arrays: 2},
		warp.MatmulProblem(d, d, d, a, b))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancelled job did not abort promptly")
	}
}

// TestRunPartitionedZeroProblem: the zero Problem is rejected.
func TestRunPartitionedZeroProblem(t *testing.T) {
	prog, err := warp.Compile(workloads.Matmul(4), warp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := prog.RunPartitioned(warp.RunConfig{}, warp.Problem{}); err == nil {
		t.Fatal("zero Problem accepted")
	}
}

// Command w2fmt pretty-prints W2 source in the canonical layout.
//
// Usage:
//
//	w2fmt [-w] program.w2 ...
//
// Without -w the formatted source goes to stdout; with -w the files are
// rewritten in place.
package main

import (
	"flag"
	"fmt"
	"os"

	"warp/internal/w2"
)

func main() {
	write := flag.Bool("w", false, "rewrite files in place")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: w2fmt [-w] program.w2 ...")
		os.Exit(2)
	}
	status := 0
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "w2fmt:", err)
			status = 1
			continue
		}
		m, err := w2.Parse(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "w2fmt: %s: %v\n", path, err)
			status = 1
			continue
		}
		out := w2.Print(m)
		if *write {
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "w2fmt:", err)
				status = 1
			}
		} else {
			fmt.Print(out)
		}
	}
	os.Exit(status)
}

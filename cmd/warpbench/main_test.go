package main

import "testing"

// TestUtilizationExperiment runs the utilization experiment, whose jobs
// compile, simulate and trace concurrently with one recorder each —
// under `go test -race` this is the concurrency check on the obs layer.
func TestUtilizationExperiment(t *testing.T) {
	if err := utilization(); err != nil {
		t.Fatal(err)
	}
}

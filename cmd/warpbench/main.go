// Command warpbench regenerates every table and figure of the paper's
// evaluation as text, next to the published values.
//
// Usage:
//
//	warpbench [-exp name] [-pipeline]
//	warpbench -json out.json [-iters n] [-compile-workers n]
//
// Experiments: fig3-1, fig4-2, fig5-1, table6-1, table6-2, table6-3,
// table6-4, table6-5, table7-1, throughput, utilization, hotspot,
// varskew, fabric, fastexec, all (default).
//
// With -json, warpbench instead runs the machine-readable benchmark
// suite (internal/bench) and writes every experiment's cycle counts,
// microcode sizes and wall-clock stats as a stable JSON schema — the
// input to scripts/benchgate.go, which compares a fresh run against the
// committed BENCH_*.json baseline.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"time"

	"warp"
	"warp/internal/bench"
	"warp/internal/commgraph"
	"warp/internal/interp"
	"warp/internal/ir"
	"warp/internal/iugen"
	"warp/internal/skew"
	"warp/internal/w2"
	"warp/internal/workloads"
)

var pipeline = flag.Bool("pipeline", true, "software pipeline innermost loops in table7-1/throughput")

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate")
	jsonOut := flag.String("json", "", "write the machine-readable benchmark suite to this file and exit")
	iters := flag.Int("iters", 5, "wall-clock iterations per experiment with -json")
	cworkers := flag.Int("compile-workers", 0, "compiler parallelism with -json (0 = GOMAXPROCS, 1 = serial; counters are identical at any setting)")
	flag.Parse()

	if *jsonOut != "" {
		report, err := bench.RunWorkers(*iters, *cworkers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warpbench: %v\n", err)
			os.Exit(1)
		}
		if err := report.WriteFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "warpbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("warpbench: wrote %d experiments to %s (%d wall-clock iterations each)\n",
			len(report.Experiments), *jsonOut, *iters)
		return
	}

	exps := map[string]func() error{
		"fig3-1":      fig31,
		"fig4-2":      fig42,
		"fig5-1":      fig51,
		"table6-1":    table61,
		"table6-2":    table62,
		"table6-3":    table63,
		"table6-4":    table64,
		"table6-5":    table65,
		"table7-1":    table71,
		"throughput":  throughput,
		"utilization": utilization,
		"hotspot":     hotspot,
		"varskew":     varskew,
		"fabric":      fabricScaling,
		"fastexec":    fastexec,
		"symbolic":    symbolicSweep,
	}
	names := []string{"fig3-1", "fig4-2", "fig5-1", "table6-1", "table6-2",
		"table6-3", "table6-4", "table6-5", "table7-1", "throughput",
		"utilization", "hotspot", "varskew", "fabric", "fastexec", "symbolic"}

	run := func(name string) {
		fmt.Printf("==================== %s ====================\n", name)
		if err := exps[name](); err != nil {
			fmt.Fprintf(os.Stderr, "warpbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *exp == "all" {
		for _, n := range names {
			run(n)
		}
		return
	}
	if _, ok := exps[*exp]; !ok {
		fmt.Fprintf(os.Stderr, "warpbench: unknown experiment %q (want one of %s, all)\n",
			*exp, strings.Join(names, ", "))
		os.Exit(2)
	}
	run(*exp)
}

// fig31 compares the SIMD and skewed computation models on the paper's
// example: a 4-step stage whose step 4 uses the neighbour's step-4
// result.
func fig31() error {
	const stage, cells = 4, 3
	deps := []skew.StageDep{{Producer: 3, Consumer: 3}}
	simd := skew.SIMDLatency(stage, deps)
	skewed := skew.SkewedLatency(stage, deps)
	fmt.Printf("stage of %d steps, dependence: step 4 -> neighbour's step 4\n\n", stage)
	fmt.Printf("%-28s %8s %8s\n", "", "SIMD", "skewed")
	fmt.Printf("%-28s %8d %8d   (paper: 4 vs 1)\n", "latency per cell (cycles)", simd, skewed)
	fmt.Printf("%-28s %8d %8d\n", "latency through 3 cells",
		skew.PipelineLatency(cells, simd, stage), skew.PipelineLatency(cells, skewed, stage))
	fmt.Println("\nstart cycle of data set d on cell c:")
	fmt.Printf("%6s", "")
	for d := int64(0); d < 3; d++ {
		fmt.Printf("   set%d(SIMD) set%d(skew)", d, d)
	}
	fmt.Println()
	for c := int64(0); c < cells; c++ {
		fmt.Printf("cell %d", c)
		for d := int64(0); d < 3; d++ {
			fmt.Printf("   %10d %10d",
				skew.StageStart(true, c, d, simd, stage),
				skew.StageStart(false, c, d, skewed, stage))
		}
		fmt.Println()
	}
	return nil
}

// fig42 reproduces the polynomial program's communication trace on the
// first two cells.
func fig42() error {
	src := workloads.PolynomialPaper()
	prog, err := warp.Compile(src, warp.Options{})
	if err != nil {
		return err
	}
	inputs := map[string][]float64{}
	z := make([]float64, 100)
	c := make([]float64, 10)
	for i := range z {
		z[i] = float64(i)
	}
	for i := range c {
		c[i] = 100 + float64(i) // c[i] recognizable in the trace
	}
	inputs["z"], inputs["c"] = z, c
	_ = prog
	mod, err := w2.Parse(src)
	if err != nil {
		return err
	}
	info, err := w2.Analyze(mod)
	if err != nil {
		return err
	}
	traces, err := interp.RunTrace(info, inputs, 2, 14)
	if err != nil {
		return err
	}
	fmt.Println("first communication steps (paper's Figure 4-2; c[i] shown as 100+i):")
	fmt.Printf("%-28s | %-28s\n", "Cell 0", "Cell 1")
	max := len(traces[0])
	if len(traces[1]) > max {
		max = len(traces[1])
	}
	for i := 0; i < max; i++ {
		left, right := "", ""
		if i < len(traces[0]) {
			left = traces[0][i].String()
		}
		if i < len(traces[1]) {
			right = traces[1][i].String()
		}
		fmt.Printf("%-28s | %-28s\n", left, right)
	}
	return nil
}

// fig51 analyzes the two programs of Figure 5-1: A passes unrelated
// data (no communication cycle), B forwards what it receives (a right
// cycle).
func fig51() error {
	progA := `
module a (xs in, ys out)
float xs[8];
float ys[8];
cellprogram (cid : 0 : 3)
begin
    function f
    begin
        float v, w;
        int i;
        for i := 0 to 7 do begin
            receive (L, X, v, xs[i]);
            w := v * 2.0;
            send (R, X, w, ys[i]);
        end;
    end
    call f;
end
`
	// In program A each cell's send is data-dependent on its receive —
	// which IS the paper's program B shape for W2 (receive, then send
	// the received data).  A W2 program whose send does not depend on
	// its receive sends locally produced data:
	progIndep := `
module indep (xs in, ys out)
float xs[8];
float ys[8];
cellprogram (cid : 0 : 3)
begin
    function f
    begin
        float v, acc;
        int i;
        acc := 1.0;
        for i := 0 to 7 do begin
            receive (L, X, v, xs[i]);
            acc := acc + 1.0;
            send (R, X, acc, ys[i]);
        end;
    end
    call f;
end
`
	for _, tc := range []struct{ name, src, note string }{
		{"program A (independent send)", progIndep, "communication edge completes no cycle"},
		{"program B (forwards its input)", progA, "right cycle: send depends on receive"},
	} {
		mod, err := w2.Parse(tc.src)
		if err != nil {
			return err
		}
		info, err := w2.Analyze(mod)
		if err != nil {
			return err
		}
		p, err := ir.Build(info)
		if err != nil {
			return err
		}
		a := commgraph.Analyze(p)
		fmt.Printf("%-32s right-cycle=%-5v left-cycle=%-5v mappable=%v  (%s)\n",
			tc.name, a.RightCycle, a.LeftCycle, a.Mappable(), tc.note)
	}
	return nil
}

func table61() error {
	p := skew.Fig62()
	to := p.Times(skew.Output)
	ti := p.Times(skew.Input)
	fmt.Printf("%-8s %6s %6s %10s\n", "number", "τ_O", "τ_I", "τ_O-τ_I")
	maxd := int64(-1 << 62)
	for n := range to {
		d := to[n] - ti[n]
		if d > maxd {
			maxd = d
		}
		fmt.Printf("%-8d %6d %6d %10d\n", n, to[n], ti[n], d)
	}
	fmt.Printf("%-8s %6s %6s %10d   (paper: 3)\n", "max", "", "", maxd)
	fmt.Println("\ntwo cells at the minimum skew (paper's Figure 6-3):")
	fmt.Print(skew.TwoCellTrace(p, maxd))
	return nil
}

func table62() error {
	p := skew.Fig64()
	to := p.Times(skew.Output)
	ti := p.Times(skew.Input)
	fmt.Printf("%-8s %6s %6s %10s\n", "number", "τ_O", "τ_I", "τ_O-τ_I")
	maxd := int64(-1 << 62)
	for n := range to {
		d := to[n] - ti[n]
		if d > maxd {
			maxd = d
		}
		fmt.Printf("%-8d %6d %6d %10d\n", n, to[n], ti[n], d)
	}
	fmt.Printf("%-8s %6s %6s %10d   (paper: 18)\n", "max", "", "", maxd)
	return nil
}

func table63() error {
	p := skew.Fig64()
	fmt.Println("characteristic vectors R, N, S, L, T (paper's Table 6-3):")
	for _, kind := range []skew.Kind{skew.Input, skew.Output} {
		for _, v := range skew.Statements(p, kind) {
			fmt.Printf("  %s\n", v)
		}
	}
	return nil
}

func table64() error {
	p := skew.Fig64()
	fmt.Println("closed-form timing functions and domains (paper's Table 6-4):")
	for _, kind := range []skew.Kind{skew.Input, skew.Output} {
		for _, v := range skew.Statements(p, kind) {
			sym := skew.NewTimingFunc(v).Symbolic()
			fmt.Printf("  %s(%d): τ(n) = %-34s  [%s]\n", kindLetter(kind), v.ID, sym, sym.DomainString())
		}
	}
	// The §6.2.1 pair analyses.
	ins := skew.Statements(p, skew.Input)
	outs := skew.Statements(p, skew.Output)
	fmt.Println("\npair analyses (§6.2.1):")
	for _, pc := range []struct {
		o, i  *skew.Vectors
		paper string
	}{
		{outs[1], ins[0], "disjoint"},
		{outs[0], ins[0], "completely overlapped, bound 17"},
		{outs[4], ins[0], "partially overlapped, bound 17+2/3"},
	} {
		pb := skew.AnalyzePair(pc.o, pc.i, skew.BoundPaper)
		if pb.Overlap == skew.Disjoint {
			fmt.Printf("  O(%d) x I(%d): %-24s              (paper: %s)\n", pc.o.ID, pc.i.ID, pb.Overlap, pc.paper)
		} else {
			fmt.Printf("  O(%d) x I(%d): %-24s bound %-6s  (paper: %s)\n", pc.o.ID, pc.i.ID, pb.Overlap, pb.Bound, pc.paper)
		}
	}
	b, _, err := skew.MinSkewBound(p, p, skew.BoundPaper)
	if err != nil {
		return err
	}
	bt, _, err := skew.MinSkewBound(p, p, skew.BoundTight)
	if err != nil {
		return err
	}
	exact, err := skew.MinSkewExact(p, p)
	if err != nil {
		return err
	}
	fmt.Printf("\nminimum skew: exact %d; pairwise bound %s (paper mode), %s (tight mode)\n", exact, b, bt)
	return nil
}

func kindLetter(k skew.Kind) string {
	if k == skew.Input {
		return "I"
	}
	return "O"
}

func table65() error {
	rows, err := iugen.Table65()
	if err != nil {
		return err
	}
	fmt.Println("operand allocations for a[i,j+1] and b[i+j,j] (paper's Table 6-5):")
	fmt.Print(iugen.FormatTable65(rows))
	fmt.Println("paper:                              3/6/2, 4/2/2, 5/1/3")
	return nil
}

// table71 compiles the five sample programs at the paper's sizes.
func table71() error {
	paper := map[string][3]int{ // W2 lines, cell µcode, IU µcode
		"1d-conv":    {59, 69, 72},
		"binop":      {61, 118, 130},
		"colorseg":   {67, 477, 509},
		"mandelbrot": {96, 1709, 1861},
		"polynomial": {41, 228, 249},
	}
	paperTime := map[string]string{
		"1d-conv": "4m58s", "binop": "5m1s", "colorseg": "version n/a",
		"mandelbrot": "21m55s", "polynomial": "15m32s",
	}
	rows := []struct {
		name string
		src  string
	}{
		{"1d-conv", workloads.Conv1DPaper()},
		{"binop", workloads.BinopPaper()},
		{"colorseg", workloads.ColorSegPaper()},
		{"mandelbrot", workloads.MandelbrotPaper()},
		{"polynomial", workloads.PolynomialPaper()},
	}
	fmt.Printf("%-12s %9s %11s %9s %13s   %s\n",
		"name", "W2 lines", "cell µcode", "IU µcode", "compile time", "(paper: lines/cell/IU, time)")
	for _, r := range rows {
		start := time.Now()
		prog, err := warp.Compile(r.src, warp.Options{Pipeline: *pipeline})
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		el := time.Since(start)
		m := prog.Metrics()
		p := paper[r.name]
		fmt.Printf("%-12s %9d %11d %9d %13s   (%d/%d/%d, %s)\n",
			r.name, m.W2Lines, m.CellInstrs, m.IUInstrs, el.Round(time.Millisecond),
			p[0], p[1], p[2], paperTime[r.name])
	}
	return nil
}

// throughput reproduces the §2/§7 throughput claims: one result per
// cycle in the inner loops of 1d-conv and polynomial.  Two problem
// sizes separate the steady-state cost per result (the initiation
// interval) from the one-time pipeline-fill and skew latency.
func throughput() error {
	type sized struct {
		src     string
		results int64
		in      map[string][]float64
	}
	cases := []struct {
		name  string
		small sized
		large sized
	}{
		{
			"polynomial",
			sized{workloads.Polynomial(10, 100), 100, map[string][]float64{
				"z": make([]float64, 100), "c": make([]float64, 10)}},
			sized{workloads.Polynomial(10, 400), 400, map[string][]float64{
				"z": make([]float64, 400), "c": make([]float64, 10)}},
		},
		{
			"1d-conv",
			sized{workloads.Conv1D(9, 512), 511, map[string][]float64{
				"x": make([]float64, 512), "w": make([]float64, 9)}},
			sized{workloads.Conv1D(9, 2048), 2047, map[string][]float64{
				"x": make([]float64, 2048), "w": make([]float64, 9)}},
		},
	}
	fmt.Printf("%-12s %-19s %12s %16s   %s\n", "program", "schedule", "cycles", "steady cyc/res",
		"FPU utilization   (paper: 1 result/cycle, units fully utilized)")
	for _, tc := range cases {
		for _, pipe := range []bool{false, true} {
			run := func(s sized) (int64, *warp.RunStats, error) {
				prog, err := warp.Compile(s.src, warp.Options{Pipeline: pipe})
				if err != nil {
					return 0, nil, err
				}
				_, stats, err := prog.Run(s.in)
				if err != nil {
					return 0, nil, err
				}
				return stats.Cycles, stats, nil
			}
			c1, _, err := run(tc.small)
			if err != nil {
				return err
			}
			c2, st2, err := run(tc.large)
			if err != nil {
				return err
			}
			marginal := float64(c2-c1) / float64(tc.large.results-tc.small.results)
			mode := "list-scheduled"
			if pipe {
				mode = "software-pipelined"
			}
			fmt.Printf("%-12s %-19s %12d %16.2f   add %3.0f%%  mul %3.0f%%\n",
				tc.name, mode, c2, marginal,
				100*st2.AddUtilization, 100*st2.MulUtilization)
		}
	}
	return nil
}

// utilization prints the observability layer's per-cell utilization
// and stall-attribution tables for the headline workloads — the
// dynamic, inspectable form of §7's "all the arithmetic units are
// fully utilized in the innermost loop".  The cases compile, simulate
// and trace concurrently, each with its own recorder; this is also the
// concurrent path the CI race detector exercises.
func utilization() error {
	type job struct {
		name string
		src  string
		pipe bool
		in   map[string][]float64
	}
	jobs := []job{
		{"polynomial, list-scheduled", workloads.Polynomial(10, 100), false,
			map[string][]float64{"z": make([]float64, 100), "c": make([]float64, 10)}},
		{"polynomial, software-pipelined", workloads.Polynomial(10, 100), true,
			map[string][]float64{"z": make([]float64, 100), "c": make([]float64, 10)}},
		{"1d-conv, software-pipelined", workloads.Conv1D(9, 512), true,
			map[string][]float64{"x": make([]float64, 512), "w": make([]float64, 9)}},
		{"matmul 10x10", workloads.Matmul(10), true,
			map[string][]float64{"a": make([]float64, 100), "bmat": make([]float64, 100)}},
	}
	reports := make([]string, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			prog, err := warp.Compile(j.src, warp.Options{Pipeline: j.pipe})
			if err != nil {
				errs[i] = err
				return
			}
			// Stream the Chrome trace to a scratch buffer so the full
			// recorder path runs, then report from the profile.
			var trace bytes.Buffer
			_, stats, err := prog.RunTraced(j.in, &trace)
			if err != nil {
				errs[i] = err
				return
			}
			reports[i] = stats.Profile.UtilizationReport()
		}(i, j)
	}
	wg.Wait()
	for i, j := range jobs {
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", j.name, errs[i])
		}
		fmt.Printf("--- %s ---\n%s\n", j.name, reports[i])
	}
	return nil
}

// hotspot is the utilization-by-source experiment: for the headline
// workloads it joins the simulator's exact per-µPC cycle counters with
// the compiler's debug map and prints where the machine's cycles went
// in W2 source terms — the hot statements, the stall breakdown per
// line, and the scheduler-introspection counters that explain how each
// loop's schedule came to be.  The busy cycles of the hottest lines
// are the dynamic form of §7's utilization claim; the starved/bubble
// columns show exactly which statements pay the pipeline's overhead.
func hotspot() error {
	type job struct {
		name string
		src  string
		pipe bool
		in   map[string][]float64
	}
	jobs := []job{
		{"polynomial, list-scheduled", workloads.Polynomial(10, 100), false,
			map[string][]float64{"z": make([]float64, 100), "c": make([]float64, 10)}},
		{"polynomial, software-pipelined", workloads.Polynomial(10, 100), true,
			map[string][]float64{"z": make([]float64, 100), "c": make([]float64, 10)}},
		{"1d-conv, software-pipelined", workloads.Conv1D(9, 512), true,
			map[string][]float64{"x": make([]float64, 512), "w": make([]float64, 9)}},
		{"matmul 10x10", workloads.Matmul(10), true,
			map[string][]float64{"a": make([]float64, 100), "bmat": make([]float64, 100)}},
	}
	for _, j := range jobs {
		prog, err := warp.Compile(j.src, warp.Options{Pipeline: j.pipe})
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		sp, err := prog.SourceProfile(j.in)
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		fmt.Printf("--- %s ---\n%s\n%s\n", j.name, sp.Report(), prog.SchedReport())
	}
	return nil
}

// fabricScaling runs the multi-array fabric's scaling experiment: a
// 40×40×40 matmul tiled over the paper's ten-cell array, farmed across
// 1, 2 and 4 simulated arrays, plus an oversized convolution.  The
// modeled speedup (aggregate machine time over the list-scheduled
// makespan) is deterministic; the wall column depends on host CPUs.
func fabricScaling() error {
	a, b := workloads.LargeMatmulData(40, 40, 40, 5)
	prob := warp.MatmulProblem(40, 40, 40, a, b)
	prog, err := warp.Compile(workloads.Matmul(10), warp.Options{Pipeline: *pipeline})
	if err != nil {
		return err
	}
	fmt.Println("matmul 40x40x40 over the 10-cell kernel (64 tiles), by array count:")
	fmt.Printf("%-8s %8s %14s %14s %10s %12s\n",
		"arrays", "tiles", "aggregate cyc", "makespan cyc", "speedup", "wall")
	for _, arrays := range []int{1, 2, 4} {
		_, fs, err := prog.RunPartitioned(warp.RunConfig{Arrays: arrays}, prob)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %8d %14d %14d %9.2fx %12s\n",
			arrays, fs.Tiles, fs.AggregateCycles, fs.MakespanCycles, fs.Speedup,
			time.Duration(fs.WallNS).Round(time.Microsecond))
	}
	x, w := workloads.LargeConv1DData(2048, 9, 5)
	cprog, err := warp.Compile(workloads.Conv1D(9, 512), warp.Options{Pipeline: *pipeline})
	if err != nil {
		return err
	}
	_, fs, err := cprog.RunPartitioned(warp.RunConfig{Arrays: 4}, warp.Conv1DProblem(w, x))
	if err != nil {
		return err
	}
	fmt.Printf("\nconv1d 2048 points, 9-weight kernel, 512-point windows on 4 arrays:\n")
	fmt.Printf("%d tiles, aggregate %d cyc, makespan %d cyc, speedup %.2fx, wall %s\n",
		fs.Tiles, fs.AggregateCycles, fs.MakespanCycles, fs.Speedup,
		time.Duration(fs.WallNS).Round(time.Microsecond))
	return nil
}

// fastexec pits the two execution backends against each other on
// verified matmuls: the cycle-accurate simulator interprets every cell
// every cycle, while the fast dataflow executor replays the verifier's
// proven schedule over host slices and reports the same closed-form
// cycle count.  The experiment hard-fails unless outputs are
// bit-identical and modeled cycles agree exactly; the wall speedup is
// the number the BENCH_10.json gate holds above 5× on the 32×32 case.
func fastexec() error {
	const iters = 3
	fmt.Println("verified matmul on both backends (outputs bit-checked, cycles must agree):")
	fmt.Printf("%-10s %10s %12s %12s %10s\n", "size", "cycles", "sim wall", "fast wall", "speedup")
	for _, n := range []int{16, 24, 32} {
		prog, err := warp.Compile(workloads.Matmul(n), warp.Options{Pipeline: *pipeline, Verify: true})
		if err != nil {
			return fmt.Errorf("matmul%d: %w", n, err)
		}
		inputs := map[string][]float64{
			"a":    make([]float64, n*n),
			"bmat": make([]float64, n*n),
		}
		for i := range inputs["a"] {
			inputs["a"][i] = float64(i%13)/4 - 1.5
			inputs["bmat"][i] = float64((i*7)%11)/8 - 0.5
		}
		run := func(backend string) (map[string][]float64, *warp.RunStats, time.Duration, error) {
			best := time.Duration(1<<62 - 1)
			var out map[string][]float64
			var rs *warp.RunStats
			for i := 0; i < iters; i++ {
				start := time.Now()
				o, r, err := prog.RunWith(warp.RunConfig{Backend: backend}, inputs)
				if err != nil {
					return nil, nil, 0, err
				}
				if el := time.Since(start); el < best {
					best = el
				}
				out, rs = o, r
			}
			return out, rs, best, nil
		}
		simOut, simRS, simWall, err := run(warp.BackendSim)
		if err != nil {
			return fmt.Errorf("matmul%d sim: %w", n, err)
		}
		fastOut, fastRS, fastWall, err := run(warp.BackendFast)
		if err != nil {
			return fmt.Errorf("matmul%d fast: %w", n, err)
		}
		if simRS.Cycles != fastRS.Cycles {
			return fmt.Errorf("matmul%d: cycle divergence: sim %d, fast %d", n, simRS.Cycles, fastRS.Cycles)
		}
		for i := range simOut["c"] {
			if math.Float64bits(simOut["c"][i]) != math.Float64bits(fastOut["c"][i]) {
				return fmt.Errorf("matmul%d: c[%d] diverged: sim %v, fast %v",
					n, i, simOut["c"][i], fastOut["c"][i])
			}
		}
		fmt.Printf("%-10s %10d %12s %12s %9.1fx\n", fmt.Sprintf("%dx%d", n, n),
			simRS.Cycles, simWall.Round(time.Microsecond), fastWall.Round(time.Microsecond),
			float64(simWall)/float64(fastWall))
	}
	fmt.Printf("\n(gate: bench.FastexecSpeedupFloor holds the 32x32 speedup above %.0fx in BENCH_10.json)\n",
		bench.FastexecSpeedupFloor)
	return nil
}

// symbolicSweep demonstrates the symbolic compile path: the matmul
// template is compiled once, its single residue class pays the probe
// compiles, and every further size on the lattice instantiates from
// closed forms in microseconds.  Each row differential-checks the
// instantiation against a from-scratch compile before timing, so the
// printed speedups describe byte-identical artifacts.
func symbolicSweep() error {
	const iters = 3
	// Verified template: the cold column pays the verifier on every
	// compile, while instantiation inherits the class base's proof —
	// the verification-once contract that widens the gap below.
	opts := warp.Options{Verify: true}
	tmpl, err := warp.CompileTemplate(workloads.MatmulSym(), opts)
	if err != nil {
		return err
	}
	// Warm the class once so the table shows the steady state; the
	// probe-compile cost is reported separately below.
	warmStart := time.Now()
	if _, err := tmpl.Program(map[string]int64{"n": 8}); err != nil {
		return err
	}
	warm := time.Since(warmStart)
	fmt.Println("matmul template, one compile, instantiated per size (byte-identity checked per row):")
	fmt.Printf("%-8s %10s %14s %14s %10s\n", "size", "cycles", "instantiate", "cold compile", "speedup")
	for _, n := range []int64{8, 14, 20, 26, 32, 38, 44} {
		bounds := map[string]int64{"n": n}
		if err := tmpl.Check(bounds); err != nil {
			return err
		}
		inst := time.Duration(1<<62 - 1)
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := tmpl.Program(bounds); err != nil {
				return err
			}
			if el := time.Since(start); el < inst {
				inst = el
			}
		}
		cold := time.Duration(1<<62 - 1)
		src := workloads.Matmul(int(n))
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := warp.Compile(src, opts); err != nil {
				return err
			}
			if el := time.Since(start); el < cold {
				cold = el
			}
		}
		cycles, err := tmpl.ModeledCycles(bounds)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %10d %14s %14s %9.0fx\n", fmt.Sprintf("%dx%d", n, n),
			cycles, inst.Round(time.Microsecond), cold.Round(time.Microsecond),
			float64(cold)/float64(inst))
	}
	st := tmpl.Stats()
	fmt.Printf("\nclass fit: %d probe compiles amortized over the sweep (first instantiation %s)\n",
		st.ProbeCompiles, warm.Round(time.Millisecond))
	fmt.Printf("(gate: bench.SymbolicSpeedupFloor holds the 32x32 min-over-min speedup above %.0fx in BENCH_10.json)\n",
		bench.SymbolicSpeedupFloor)
	return nil
}

// varskew quantifies the §6.2.1 alternative the paper sketches: varying
// the skew (delaying each input individually) lowers buffer demand but
// not latency.  The example is a producer emitting one word every three
// cycles into a consumer that reads back to back.
func varskew() error {
	prog := skew.Build(
		skew.Rep(50, skew.In()),
		skew.Rep(50, skew.Out(), skew.Nop(), skew.Nop()),
	)
	r, err := skew.VariableSkew(prog, prog)
	if err != nil {
		return err
	}
	fmt.Printf("cell program: 50 back-to-back reads, then one send per 3 cycles x50\n")
	fmt.Printf("(the producer dribbles words out while the fixed-skew consumer\n")
	fmt.Printf(" bunches all its reads late)\n\n")
	fmt.Print(r.Describe())
	fmt.Printf("\n(paper, §6.2.1: inserting delays before each input \"may lower the demand\n")
	fmt.Printf("on the size of the buffers... it does not lead to higher utilization\")\n")
	// Also show the worked example.
	p64 := skew.Fig64()
	r64, err := skew.VariableSkew(p64, p64)
	if err != nil {
		return err
	}
	fmt.Printf("\nFigure 6-4 program for reference:\n%s", r64.Describe())
	return nil
}

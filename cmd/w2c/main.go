// Command w2c compiles a W2 source file for the Warp array and reports
// the generated microcode and the inter-cell scheduling analysis.
//
// Usage:
//
//	w2c [-cell] [-iu] [-noopt] [-pipeline] [-verify] [-cells n] [-compile-workers n] program.w2
//
// Without listing flags it prints the compile report: microcode sizes,
// minimum skew, proven queue occupancy and IU resource usage.
//
// With -verify the static microcode verifier runs as a final compile
// phase.  A verification failure prints one structured diagnostic per
// violated invariant (cell, instruction index, invariant name) and
// exits with status 3, distinguishing "the compiler produced provably
// wrong microcode" from ordinary compile errors (status 1).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"warp"
	"warp/internal/verify"
	"warp/internal/w2"
)

func main() {
	var (
		showCell = flag.Bool("cell", false, "print the cell microcode listing")
		showIU   = flag.Bool("iu", false, "print the IU microcode listing")
		noopt    = flag.Bool("noopt", false, "disable the local optimizer")
		pipeline = flag.Bool("pipeline", false, "software pipeline innermost loops")
		doVerify = flag.Bool("verify", false, "statically verify the generated microcode")
		cells    = flag.Int("cells", 0, "override the array size")
		cworkers = flag.Int("compile-workers", 0, "compiler parallelism (0 = GOMAXPROCS, 1 = serial; output is identical at any setting)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: w2c [flags] program.w2")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := warp.Compile(string(src), warp.Options{
		NoOptimize:     *noopt,
		Pipeline:       *pipeline,
		Cells:          *cells,
		Verify:         *doVerify,
		CompileWorkers: *cworkers,
	})
	if err != nil {
		var verr *verify.Error
		if errors.As(err, &verr) {
			fmt.Fprintf(os.Stderr, "%s: verification failed: %d invariant violation(s)\n",
				flag.Arg(0), len(verr.Diags))
			for _, d := range verr.Diags {
				fmt.Fprintf(os.Stderr, "  %s\n", d)
			}
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m := prog.Metrics()
	fmt.Printf("module %s: %d cells, %d W2 lines\n", m.Name, m.Cells, m.W2Lines)
	fmt.Printf("  cell ucode: %4d instructions (%d cycles per cell)\n", m.CellInstrs, m.CellCycles)
	fmt.Printf("  IU ucode:   %4d instructions, %d address registers, %d table words\n",
		m.IUInstrs, m.IUAddrRegs, m.IUTable)
	fmt.Printf("  skew: %d cycles between cells; queue occupancy X=%d Y=%d (of 128)\n",
		m.Skew, m.QueueOccX, m.QueueOccY)
	fmt.Printf("  optimizer: %d transformations; %d loops software pipelined\n",
		m.OptCount, m.Pipelined)
	fmt.Printf("  compile time: %v\n", m.CompileTime)
	if rep := prog.Verified(); rep != nil {
		fmt.Printf("  verified: %d propositions proven; peak occupancy X=%d Y=%d Adr=%d Sig=%d\n",
			rep.Checked, rep.Data[w2.ChanX].Max, rep.Data[w2.ChanY].Max, rep.Adr.Max, rep.Sig.Max)
	}
	if *showCell {
		fmt.Println("\ncell microcode:")
		fmt.Print(prog.CellListing())
	}
	if *showIU {
		fmt.Println("\nIU microcode:")
		fmt.Print(prog.IUListing())
	}
}

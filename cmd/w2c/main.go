// Command w2c compiles a W2 source file for the Warp array and reports
// the generated microcode and the inter-cell scheduling analysis.
//
// Usage:
//
//	w2c [-cell] [-iu] [-noopt] [-pipeline] [-verify] [-cells n] [-compile-workers n] program.w2
//	w2c -symbolic -bounds n=32[,k=5...] [-check] [flags] template.w2
//
// Without listing flags it prints the compile report: microcode sizes,
// minimum skew, proven queue occupancy and IU resource usage.
//
// With -symbolic the source is a ${...}-parameterized template:
// w2c compiles it once into closed-form microcode templates and
// instantiates the -bounds vector, reporting whether the program came
// from the closed forms or a concrete fallback.  -check additionally
// compiles the substituted source from scratch and fails (status 4)
// unless the two artifacts are byte-identical.
//
// With -verify the static microcode verifier runs as a final compile
// phase.  A verification failure prints one structured diagnostic per
// violated invariant (cell, instruction index, invariant name) and
// exits with status 3, distinguishing "the compiler produced provably
// wrong microcode" from ordinary compile errors (status 1).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"warp"
	"warp/internal/verify"
	"warp/internal/w2"
)

func main() {
	var (
		showCell = flag.Bool("cell", false, "print the cell microcode listing")
		showIU   = flag.Bool("iu", false, "print the IU microcode listing")
		noopt    = flag.Bool("noopt", false, "disable the local optimizer")
		pipeline = flag.Bool("pipeline", false, "software pipeline innermost loops")
		doVerify = flag.Bool("verify", false, "statically verify the generated microcode")
		cells    = flag.Int("cells", 0, "override the array size")
		cworkers = flag.Int("compile-workers", 0, "compiler parallelism (0 = GOMAXPROCS, 1 = serial; output is identical at any setting)")
		symbolic = flag.Bool("symbolic", false, "compile a ${...} template and instantiate -bounds")
		boundsFl = flag.String("bounds", "", "bound vector for -symbolic, e.g. n=32 or k=5,n=128")
		check    = flag.Bool("check", false, "with -symbolic: verify the instantiation against a from-scratch concrete compile")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: w2c [flags] program.w2")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := warp.Options{
		NoOptimize:     *noopt,
		Pipeline:       *pipeline,
		Cells:          *cells,
		Verify:         *doVerify,
		CompileWorkers: *cworkers,
	}
	var prog *warp.Program
	if *symbolic {
		prog = compileSymbolic(string(src), opts, *boundsFl, *check)
	} else {
		prog, err = warp.Compile(string(src), opts)
	}
	if err != nil {
		var verr *verify.Error
		if errors.As(err, &verr) {
			fmt.Fprintf(os.Stderr, "%s: verification failed: %d invariant violation(s)\n",
				flag.Arg(0), len(verr.Diags))
			for _, d := range verr.Diags {
				fmt.Fprintf(os.Stderr, "  %s\n", d)
			}
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m := prog.Metrics()
	fmt.Printf("module %s: %d cells, %d W2 lines\n", m.Name, m.Cells, m.W2Lines)
	fmt.Printf("  cell ucode: %4d instructions (%d cycles per cell)\n", m.CellInstrs, m.CellCycles)
	fmt.Printf("  IU ucode:   %4d instructions, %d address registers, %d table words\n",
		m.IUInstrs, m.IUAddrRegs, m.IUTable)
	fmt.Printf("  skew: %d cycles between cells; queue occupancy X=%d Y=%d (of 128)\n",
		m.Skew, m.QueueOccX, m.QueueOccY)
	fmt.Printf("  optimizer: %d transformations; %d loops software pipelined\n",
		m.OptCount, m.Pipelined)
	fmt.Printf("  compile time: %v\n", m.CompileTime)
	if rep := prog.Verified(); rep != nil {
		fmt.Printf("  verified: %d propositions proven; peak occupancy X=%d Y=%d Adr=%d Sig=%d\n",
			rep.Checked, rep.Data[w2.ChanX].Max, rep.Data[w2.ChanY].Max, rep.Adr.Max, rep.Sig.Max)
	}
	if *showCell {
		fmt.Println("\ncell microcode:")
		fmt.Print(prog.CellListing())
	}
	if *showIU {
		fmt.Println("\nIU microcode:")
		fmt.Print(prog.IUListing())
	}
}

// compileSymbolic serves the -symbolic path: compile the template,
// instantiate the -bounds vector, report how the program was served,
// and optionally differential-check against a concrete compile.  Exits
// on failure; returns the instantiated program otherwise.
func compileSymbolic(src string, opts warp.Options, boundsArg string, check bool) *warp.Program {
	bounds, err := warp.ParseBounds(boundsArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tmpl, err := warp.CompileTemplate(src, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now()
	prog, detail, err := tmpl.ProgramDetail(bounds, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	st := tmpl.Stats()
	if detail.Symbolic {
		fmt.Printf("template: instantiated symbolically from class [%s] in %v (%d probe compiles amortized)\n",
			detail.Class, elapsed, st.ProbeCompiles)
	} else {
		fmt.Printf("template: concrete fallback (%s) in %v\n", detail.FallbackReason, elapsed)
	}
	if check {
		if err := tmpl.Check(bounds); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(4)
		}
		fmt.Printf("template: -check passed: instantiation is byte-identical to a from-scratch compile\n")
	}
	return prog
}

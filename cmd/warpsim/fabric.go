package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"warp"
	"warp/internal/bench"
	"warp/internal/interp"
	"warp/internal/w2"
	"warp/internal/workloads"
)

// fabricSpec is the JSON problem description a .json program argument
// carries: an oversized workload the fabric partitions into tiles of a
// freshly compiled array kernel.
type fabricSpec struct {
	Workload string `json:"workload"` // "matmul" or "conv1d"

	// Matmul: C = A×B with A m×k and B k×n, tiled into tile×tile
	// blocks on a tile-cell kernel.
	M    int `json:"m"`
	K    int `json:"k"`
	N    int `json:"n"`
	Tile int `json:"tile"`

	// Conv1D: nx signal points through a kernel-weight filter, tiled
	// into window-point slices on a kernel-cell array.
	NX     int `json:"nx"`
	Kernel int `json:"kernel"`
	Window int `json:"window"`

	Seed int64 `json:"seed"`
}

// loadFabricSpec returns the parsed spec when the argument is a .json
// file, nil when it is not (a W2 source or builtin name).
func loadFabricSpec(arg string) (*fabricSpec, error) {
	if filepath.Ext(arg) != ".json" {
		return nil, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var spec fabricSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("parsing problem spec %s: %w", arg, err)
	}
	if spec.Workload == "" {
		return nil, fmt.Errorf("%s: problem spec has no \"workload\" field", arg)
	}
	return &spec, nil
}

type fabricFlags struct {
	pipeline  bool
	arrays    int
	retries   int
	deadline  time.Duration
	maxCycles int64
	seed      int64
	check     bool
	backend   string
	statsJSON string
	progress  bool
	stats     bool

	// profile enables per-tile µPC profiling (the farm merges tiles into
	// one aggregate); printProfile additionally prints the text reports.
	profile      bool
	printProfile bool
	// Pre-opened output files (nil when the flag is unset); main opens
	// them before anything expensive runs.
	statsFile *os.File
	flameFile *os.File
	flamePath string
	pprofFile *os.File
	pprofPath string
	outFile   *os.File
}

// runFabric compiles the tile kernel the spec names, partitions the
// oversized problem, farms the tiles across f.arrays simulated arrays
// and reports the fabric statistics.
func runFabric(spec *fabricSpec, f fabricFlags) {
	seed := spec.Seed
	if seed == 0 {
		seed = f.seed
	}

	var (
		kernelSrc string // the array-sized tile kernel
		oracleSrc string // the full, un-partitioned problem for -check
		prob      warp.Problem
		inputs    map[string][]float64 // oracle inputs
		outName   string
		validLen  int // length of the valid oracle prefix to compare
	)
	switch spec.Workload {
	case "matmul":
		if spec.M < 1 || spec.K < 1 || spec.N < 1 || spec.Tile < 2 {
			fail(fmt.Errorf("matmul spec needs m, k, n >= 1 and tile >= 2 (got %dx%dx%d tile %d)",
				spec.M, spec.K, spec.N, spec.Tile))
		}
		a, b := workloads.LargeMatmulData(spec.M, spec.K, spec.N, seed)
		kernelSrc = workloads.Matmul(spec.Tile)
		oracleSrc = workloads.MatmulRect(spec.M, spec.K, spec.N)
		prob = warp.MatmulProblem(spec.M, spec.K, spec.N, a, b)
		inputs = map[string][]float64{"a": a, "bmat": b}
		outName, validLen = "c", spec.M*spec.N
	case "conv1d":
		if spec.Kernel < 2 || spec.Window <= spec.Kernel || spec.NX < spec.Window {
			fail(fmt.Errorf("conv1d spec needs kernel >= 2, window > kernel, nx >= window (got kernel %d window %d nx %d)",
				spec.Kernel, spec.Window, spec.NX))
		}
		x, w := workloads.LargeConv1DData(spec.NX, spec.Kernel, seed)
		kernelSrc = workloads.Conv1D(spec.Kernel, spec.Window)
		oracleSrc = workloads.Conv1D(spec.Kernel, spec.NX)
		prob = warp.Conv1DProblem(w, x)
		inputs = map[string][]float64{"x": x, "w": w}
		outName, validLen = "results", spec.NX-spec.Kernel+1
	default:
		fail(fmt.Errorf("unknown workload %q (want matmul or conv1d)", spec.Workload))
	}

	prog, err := compileFor(kernelSrc, warp.Options{Pipeline: f.pipeline}, f.backend, false)
	if err != nil {
		fail(err)
	}
	var tick *progressTicker
	runCfg := warp.RunConfig{
		Arrays:       f.arrays,
		MaxCycles:    f.maxCycles,
		TileDeadline: f.deadline,
		TileRetries:  f.retries,
		Profile:      f.profile,
		Backend:      f.backend,
	}
	if f.progress {
		tick = newProgressTicker(os.Stderr)
		runCfg.Progress = tick.update
	}
	runStart := time.Now()
	out, fs, err := prog.RunPartitioned(runCfg, prob)
	tick.Stop()
	if err != nil {
		var te *warp.TileError
		if errors.As(err, &te) {
			fmt.Fprintf(os.Stderr, "warpsim: tile %d failed after %d attempt(s): %v\n",
				te.Tile, te.Attempts, te.Err)
		}
		failRun(err, f.maxCycles)
	}
	wallNS := int64(time.Since(runStart))
	m := prog.Metrics()
	fmt.Printf("fabric %s: %d tiles on %d arrays (%d-cell kernel, skew %d, %s backend)\n",
		spec.Workload, fs.Tiles, fs.Arrays, m.Cells, m.Skew, fs.Backend)
	fmt.Printf("dispatched %d, retried %d, failed %d; staged %d host words\n",
		fs.Dispatched, fs.Retried, fs.Failed, fs.StagedWords)
	fmt.Printf("aggregate %d cycles, makespan %d cycles, modeled speedup %.2fx, wall %s\n",
		fs.AggregateCycles, fs.MakespanCycles, fs.Speedup, time.Duration(fs.WallNS).Round(time.Microsecond))
	if f.stats {
		fmt.Print(decisionLine(fs.Decision))
	}

	if f.statsFile != nil {
		rep := &bench.Report{Schema: bench.Schema, Experiments: []bench.Experiment{
			bench.FromFabric("warpsim/fabric-"+spec.Workload, m, fs,
				&bench.Wall{Iters: 1, MedianNS: wallNS, MinNS: wallNS}),
		}}
		if err := writeClose(f.statsFile, rep.Write); err != nil {
			fail(fmt.Errorf("-stats-json: %w", err))
		}
		fmt.Printf("stats: wrote %s (%s schema)\n", f.statsJSON, bench.Schema)
	}

	writeProfile(fs.Source, f.printProfile, prog.SchedReport(),
		f.flameFile, f.flamePath, f.pprofFile, f.pprofPath)

	if f.outFile != nil {
		data, err := json.MarshalIndent(out, "", " ")
		if err != nil {
			fail(err)
		}
		if _, werr := f.outFile.Write(data); werr == nil {
			err = f.outFile.Close()
		} else {
			f.outFile.Close()
			err = werr
		}
		if err != nil {
			fail(fmt.Errorf("-o: %w", err))
		}
	}

	if f.check {
		mod, err := w2.Parse(oracleSrc)
		if err != nil {
			fail(err)
		}
		info, err := w2.Analyze(mod)
		if err != nil {
			fail(err)
		}
		want, err := interp.Run(info, inputs)
		if err != nil {
			fail(fmt.Errorf("interpreter: %w", err))
		}
		got := out[outName]
		if len(got) < validLen {
			fail(fmt.Errorf("stitched output has %d elements, oracle needs %d", len(got), validLen))
		}
		for i := 0; i < validLen; i++ {
			if got[i] != want[outName][i] {
				fail(fmt.Errorf("mismatch: %s[%d] = %v, full-problem interpreter says %v",
					outName, i, got[i], want[outName][i]))
			}
		}
		fmt.Printf("check: all %d stitched outputs element-exact against the full-problem interpreter\n", validLen)
	}
}

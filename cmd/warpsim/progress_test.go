package main

import (
	"strings"
	"testing"

	"warp"
)

// TestProgressTickerSingleLine pins the -progress terminal contract:
// every repaint starts with \r (rewriting one line, never scrolling),
// the only newline is the terminal update's, and a shrinking message is
// blank-padded so no stale tail survives.
func TestProgressTickerSingleLine(t *testing.T) {
	var buf strings.Builder
	tick := newProgressTicker(&buf)
	tick.last = tick.last.Add(-2 * tickerInterval) // defeat throttling for the test
	tick.update(warp.ProgressUpdate{Cycles: 4096, TotalCycles: 819200})
	tick.last = tick.last.Add(-2 * tickerInterval)
	tick.update(warp.ProgressUpdate{Cycles: 819200, TotalCycles: 819200, Done: true})
	out := buf.String()

	if got := strings.Count(out, "\n"); got != 1 {
		t.Errorf("ticker wrote %d newlines, want exactly 1 (the terminal one): %q", got, out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("ticker output does not end in a newline: %q", out)
	}
	frames := strings.Split(strings.TrimSuffix(out, "\n"), "\r")
	// Split yields a leading empty element because the output starts
	// with \r; every real frame follows one.
	if len(frames) < 3 || frames[0] != "" {
		t.Fatalf("want >= 2 \\r-led frames, got %q", out)
	}
	for _, f := range frames[1:] {
		if !strings.HasPrefix(f, "progress: ") {
			t.Errorf("frame %q does not start with the progress prefix", f)
		}
		if strings.Contains(f, "\n") {
			t.Errorf("frame %q contains a newline", f)
		}
	}
	last := frames[len(frames)-1]
	if !strings.Contains(last, "done, 819200 cycles") {
		t.Errorf("terminal frame %q does not report completion", last)
	}
	// The terminal frame is shorter than the first; the pad must cover
	// the difference so the longer first frame leaves no tail.
	if len(last) < len(frames[1]) {
		t.Errorf("terminal frame not padded over the widest frame: %d < %d", len(last), len(frames[1]))
	}
}

// TestProgressTickerNoInterleaveWithStats pins that a ticker followed
// by -stats-style stdout printing cannot interleave: once the ticker
// stops (terminal update or Stop), its stream ends with a newline, so
// a subsequent report starts at column zero on its own line.
func TestProgressTickerNoInterleaveWithStats(t *testing.T) {
	var stderr strings.Builder
	tick := newProgressTicker(&stderr)
	tick.last = tick.last.Add(-2 * tickerInterval)
	tick.update(warp.ProgressUpdate{Cycles: 100, TotalCycles: 200})
	tick.update(warp.ProgressUpdate{Cycles: 200, TotalCycles: 200, Done: true})
	tick.Stop() // idempotent after the terminal update

	if !strings.HasSuffix(stderr.String(), "\n") {
		t.Fatalf("ticker stream did not finish its line: %q", stderr.String())
	}
	// Updates after the terminal one (a straggler hook firing) must not
	// draw over the finished line.
	tick.update(warp.ProgressUpdate{Cycles: 300, TotalCycles: 200})
	if !strings.HasSuffix(stderr.String(), "\n") {
		t.Errorf("straggler update drew after the terminal newline: %q", stderr.String())
	}

	// The stats report goes to a different stream entirely; combined in
	// terminal order, every stats line stays whole.
	var stdout strings.Builder
	stdout.WriteString("cell  busy  stall\n   0  0.92   0.08\n")
	stdout.WriteString(decisionLine(&warp.Decision{
		Backend: "fast", Reason: "auto-verified",
		PredictedSimWallNS: 1e6, PredictedFastWallNS: 1e5, ActualWallNS: 1.2e5,
	}))
	combined := stderr.String() + stdout.String()
	for i, line := range strings.Split(strings.TrimSuffix(combined, "\n"), "\n") {
		if i == 0 {
			continue // the ticker's own \r frames
		}
		if strings.Contains(line, "\r") {
			t.Errorf("stats line %d interleaved with ticker frames: %q", i, line)
		}
	}
	if !strings.Contains(stdout.String(), "decision: backend fast (auto-verified)") {
		t.Errorf("decision line malformed: %q", stdout.String())
	}
}

// TestFormatProgress covers the three rendering shapes: fabric tiles,
// bounded single-array position, and unbounded position.
func TestFormatProgress(t *testing.T) {
	cases := []struct {
		u    warp.ProgressUpdate
		want string
	}{
		{warp.ProgressUpdate{Cycles: 500, TilesDone: 3, Tiles: 10}, "3/10 tiles, 500 aggregate cycles"},
		{warp.ProgressUpdate{Cycles: 50, TotalCycles: 200}, "cycle 50/200 (25%)"},
		{warp.ProgressUpdate{Cycles: 50}, "cycle 50"},
		{warp.ProgressUpdate{Cycles: 200, TotalCycles: 200, Done: true}, "done, 200 cycles"},
	}
	for _, tc := range cases {
		if got := formatProgress(tc.u); got != tc.want {
			t.Errorf("formatProgress(%+v) = %q, want %q", tc.u, got, tc.want)
		}
	}
}

package main

import (
	"fmt"
	"io"
	"sync"
	"time"

	"warp"
)

// progressTicker renders run progress as one carriage-return-updated
// line: every update rewrites the same line in place and Stop (or the
// terminal update) finishes it with a newline, so whatever the command
// prints next — the summary, -stats tables, profiles — starts on a
// fresh line and never interleaves with a half-drawn ticker.
type progressTicker struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	last  time.Time // last repaint, for throttling
	width int       // widest line drawn, for \r overpaint
	done  bool
}

// tickerInterval throttles repaints: the hook fires every poll stride
// (thousands of times a second on a fast host), the terminal needs ~10
// frames a second.
const tickerInterval = 100 * time.Millisecond

func newProgressTicker(w io.Writer) *progressTicker {
	return &progressTicker{w: w, start: time.Now()}
}

// update is the warp.ProgressFunc: repaint the line, throttled, and
// finalize it on the terminal update.
func (t *progressTicker) update(u warp.ProgressUpdate) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	now := time.Now()
	if !u.Done && now.Sub(t.last) < tickerInterval {
		return
	}
	t.last = now
	t.paint(formatProgress(u), now)
	if u.Done {
		fmt.Fprintln(t.w)
		t.done = true
	}
}

// Stop finishes the ticker line if the run never delivered a terminal
// update (an error path).  Idempotent; safe on a nil ticker (flag off)
// and on a ticker that never drew.
func (t *progressTicker) Stop() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	if t.width > 0 {
		fmt.Fprintln(t.w)
	}
}

// paint rewrites the single line in place, blank-padding to the widest
// line drawn so a shrinking message leaves no stale tail characters.
func (t *progressTicker) paint(msg string, now time.Time) {
	line := fmt.Sprintf("progress: %s (%s)", msg, now.Sub(t.start).Round(100*time.Millisecond))
	pad := 0
	if len(line) < t.width {
		pad = t.width - len(line)
	} else {
		t.width = len(line)
	}
	fmt.Fprintf(t.w, "\r%s%*s", line, pad, "")
}

// formatProgress renders one update: tile counts for fabric jobs,
// cycle position (with percent when the modeled total is known) for
// single-array runs.
func formatProgress(u warp.ProgressUpdate) string {
	if u.Tiles > 0 {
		return fmt.Sprintf("%d/%d tiles, %d aggregate cycles", u.TilesDone, u.Tiles, u.Cycles)
	}
	if u.Done {
		return fmt.Sprintf("done, %d cycles", u.Cycles)
	}
	if u.TotalCycles > 0 {
		return fmt.Sprintf("cycle %d/%d (%.0f%%)", u.Cycles, u.TotalCycles,
			100*float64(u.Cycles)/float64(u.TotalCycles))
	}
	return fmt.Sprintf("cycle %d", u.Cycles)
}

// decisionLine renders the backend decision audit for the -stats
// report: what ran, why, and how the cost model's prediction compared
// to the measured wall.
func decisionLine(d *warp.Decision) string {
	if d == nil {
		return ""
	}
	line := fmt.Sprintf("decision: backend %s (%s); predicted sim %s", d.Backend, d.Reason,
		time.Duration(d.PredictedSimWallNS).Round(time.Microsecond))
	if d.PredictedFastWallNS > 0 {
		line += fmt.Sprintf(", fast %s", time.Duration(d.PredictedFastWallNS).Round(time.Microsecond))
	}
	line += fmt.Sprintf("; actual %s", time.Duration(d.ActualWallNS).Round(time.Microsecond))
	if f := d.ErrorFactor(); f > 0 {
		line += fmt.Sprintf(" (%.1fx off)", f)
	}
	return line + "\n"
}

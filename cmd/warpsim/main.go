// Command warpsim compiles a W2 program and executes it on the
// simulated Warp machine.
//
// Usage:
//
//	warpsim [-pipeline] [-seed n] [-inputs data.json] [-check] program.w2
//
// Inputs are read from a JSON object mapping "in" parameter names to
// number arrays; missing arrays (or all of them, without -inputs) are
// filled with seeded random values.  With -check the simulated outputs
// are compared against the reference interpreter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"warp"
)

func main() {
	var (
		pipeline = flag.Bool("pipeline", false, "software pipeline innermost loops")
		seed     = flag.Int64("seed", 1, "seed for generated inputs")
		inPath   = flag.String("inputs", "", "JSON file with input arrays")
		check    = flag.Bool("check", false, "verify against the reference interpreter")
		outPath  = flag.String("o", "", "write outputs as JSON to this file (default stdout summary)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: warpsim [flags] program.w2")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := warp.Compile(string(src), warp.Options{Pipeline: *pipeline})
	if err != nil {
		fail(err)
	}

	inputs := map[string][]float64{}
	if *inPath != "" {
		data, err := os.ReadFile(*inPath)
		if err != nil {
			fail(err)
		}
		if err := json.Unmarshal(data, &inputs); err != nil {
			fail(fmt.Errorf("parsing %s: %w", *inPath, err))
		}
	}
	fillRandom(prog, inputs, *seed)

	out, stats, err := prog.Run(inputs)
	if err != nil {
		fail(err)
	}
	m := prog.Metrics()
	fmt.Printf("module %s: %d cells, skew %d, %d cycles, peak queue %d\n",
		m.Name, m.Cells, m.Skew, stats.Cycles, stats.MaxQueue)

	if *check {
		want, err := prog.Interpret(inputs)
		if err != nil {
			fail(fmt.Errorf("interpreter: %w", err))
		}
		for name, w := range want {
			g := out[name]
			for i := range w {
				if !approxEqual(g[i], w[i]) {
					fail(fmt.Errorf("mismatch: %s[%d] = %v, interpreter says %v", name, i, g[i], w[i]))
				}
			}
		}
		fmt.Println("check: simulated outputs match the reference interpreter")
	}

	if *outPath != "" {
		data, err := json.MarshalIndent(out, "", " ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fail(err)
		}
	} else {
		for name, vals := range out {
			n := len(vals)
			if n > 8 {
				fmt.Printf("%s: %v ... (%d values)\n", name, vals[:8], n)
			} else {
				fmt.Printf("%s: %v\n", name, vals)
			}
		}
	}
}

// fillRandom fills any missing input array with seeded random values
// of the declared size.
func fillRandom(prog *warp.Program, inputs map[string][]float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, p := range prog.Params() {
		if p.Out {
			continue
		}
		if _, ok := inputs[p.Name]; ok {
			continue
		}
		arr := make([]float64, p.Size)
		for i := range arr {
			arr[i] = math.Round(rng.Float64()*16-8) / 4
		}
		inputs[p.Name] = arr
	}
}

func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "warpsim:", err)
	os.Exit(1)
}

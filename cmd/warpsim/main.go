// Command warpsim compiles a W2 program and executes it on the
// simulated Warp machine.
//
// Usage:
//
//	warpsim [-pipeline] [-cells n] [-seed n] [-inputs data.json]
//	        [-backend auto|sim|fast] [-crosscheck] [-progress]
//	        [-check] [-trace out.json] [-stats] [-stats-json out.json]
//	        [-max-cycles n] program.w2
//	warpsim -arrays n [-backend auto|sim|fast] [-check] [-progress]
//	        [-tile-retries n] [-tile-deadline d]
//	        [-stats-json out.json] problem.json
//
// The program argument is a W2 source file, or the name of a built-in
// workload (matmul, polynomial, conv1d, binop, fft, colorseg,
// mandelbrot) for quick experiments.
//
// A .json program argument is instead a fabric problem spec — an
// oversized workload partitioned into array-sized tiles and farmed
// across -arrays concurrent simulator instances (see examples/fabric):
//
//	{"workload": "matmul", "m": 48, "k": 48, "n": 48, "tile": 12, "seed": 7}
//	{"workload": "conv1d", "nx": 4096, "kernel": 9, "window": 512, "seed": 7}
//
// With -check the stitched result is verified element-exact against
// the reference interpreter evaluating the full, un-partitioned
// problem.
//
// Inputs are read from a JSON object mapping "in" parameter names to
// number arrays; missing arrays (or all of them, without -inputs) are
// filled with seeded random values.  With -check the simulated outputs
// are compared against the reference interpreter.
//
// Backends: -backend picks the executor.  "auto" (the default)
// verifies the program and runs it on the fast dataflow executor —
// cycle counts come from the verifier's closed-form model — falling
// back to the cycle-accurate simulator when verification rejects or
// per-cycle observability (-trace, -profile, -flame, -pprof) is
// requested.  "sim" forces simulation; "fast" demands the fast
// executor and fails on an unverifiable program.  -crosscheck runs the
// program on BOTH backends and fails unless the outputs are
// bit-identical and the cycle counts exactly equal, then reports the
// wall-clock speedup.
//
// Live progress: -progress streams the run's position as a single
// carriage-return-updated stderr line — cycle N of the modeled total
// for a single array, completed tiles for a fabric job — finished with
// a newline before anything else prints, so it never interleaves with
// -stats output.  -stats additionally reports the backend decision
// audit: which executor ran the program, why, and the cost model's
// predicted wall time against the measured one.
//
// Observability: -trace writes a Chrome trace-event JSON file (load it
// at https://ui.perfetto.dev — one track per cell, functional unit and
// queue, plus a compiler-phase track); -stats prints the per-cell
// utilization/stall table and the compiler's per-phase timing;
// -stats-json writes the run record in the same JSON schema as
// `warpbench -json` (one per-experiment record, schema warpbench/1).
//
// Profiling: -profile records the exact per-µPC cycle counters and
// prints the source-line hot-spot report (with the busy/starved/bubble
// stall breakdown) plus the scheduler-introspection report; -flame
// writes the same attribution as folded flame-graph stacks
// (flamegraph.pl / speedscope input); -pprof writes it as gzipped
// pprof protobuf for `go tool pprof`.  -flame and -pprof imply
// profiling.  On a fabric run the profile is the merge of every tile's
// exact attribution.
//
// Every output path (-o, -trace, -stats-json, -flame, -pprof) is
// created up front, before compiling or simulating anything, so an
// unwritable path fails immediately — exit status 1 and a message
// naming the flag — instead of after a long run.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"time"

	"warp"
	"warp/internal/bench"
	"warp/internal/verify"
	"warp/internal/workloads"
)

func main() {
	var (
		pipeline  = flag.Bool("pipeline", false, "software pipeline innermost loops")
		cells     = flag.Int("cells", 0, "override the array size declared by the cellprogram")
		seed      = flag.Int64("seed", 1, "seed for generated inputs")
		inPath    = flag.String("inputs", "", "JSON file with input arrays")
		check     = flag.Bool("check", false, "verify against the reference interpreter")
		outPath   = flag.String("o", "", "write outputs as JSON to this file (default stdout summary)")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON file (Perfetto-loadable)")
		stats     = flag.Bool("stats", false, "print per-cell utilization/stall table and compile-phase timing")
		statsJSON = flag.String("stats-json", "", "write the run record as benchmark JSON (warpbench -json schema)")
		maxCycles = flag.Int64("max-cycles", 0, "abort the simulation after this many cycles (0 = default, 1<<28)")
		arrays    = flag.Int("arrays", 1, "farm a fabric problem spec across this many simulated arrays")
		tileRetry = flag.Int("tile-retries", 1, "extra attempts a livelocked tile gets before the job fails")
		tileDL    = flag.Duration("tile-deadline", 0, "per-tile attempt deadline (0 = none)")
		profile   = flag.Bool("profile", false, "record the exact source-line cycle profile and print the hot-spot and scheduler reports")
		flamePath = flag.String("flame", "", "write the profile as folded flame-graph stacks (implies profiling)")
		pprofPath = flag.String("pprof", "", "write the profile as gzipped pprof protobuf for `go tool pprof` (implies profiling)")
		symFlag   = flag.Bool("symbolic", false, "treat program.w2 as a ${...} template and instantiate -bounds")
		boundsFl  = flag.String("bounds", "", "bound vector for -symbolic, e.g. n=32 or k=5,n=128")
		backend   = flag.String("backend", "auto", "execution backend: auto (fast for verified programs), sim, or fast")
		crossFlag = flag.Bool("crosscheck", false, "run on both backends and fail unless outputs are bit-identical and cycles exactly equal")
		progFlag  = flag.Bool("progress", false, "stream live run progress as a single updating stderr line")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: warpsim [flags] program.w2 | problem.json")
		flag.Usage()
		os.Exit(2)
	}
	profiling := *profile || *flamePath != "" || *pprofPath != ""

	// Open every output path before compiling or simulating anything:
	// an unwritable path must fail now, with the flag named, not after
	// the run has spent its cycles.
	traceFile := createOut("-trace", *tracePath)
	statsFile := createOut("-stats-json", *statsJSON)
	flameFile := createOut("-flame", *flamePath)
	pprofFile := createOut("-pprof", *pprofPath)
	outFile := createOut("-o", *outPath)

	if spec, err := loadFabricSpec(flag.Arg(0)); err != nil {
		fail(err)
	} else if spec != nil {
		if traceFile != nil {
			fail(fmt.Errorf("-trace applies to single-array runs, not fabric problem specs"))
		}
		if *crossFlag {
			fail(fmt.Errorf("-crosscheck applies to single-array runs, not fabric problem specs"))
		}
		if *symFlag {
			fail(fmt.Errorf("-symbolic applies to single-program runs; fabric specs share templates through warpd"))
		}
		runFabric(spec, fabricFlags{
			pipeline: *pipeline, arrays: *arrays, retries: *tileRetry,
			deadline: *tileDL, maxCycles: *maxCycles, seed: *seed,
			check: *check, profile: profiling, printProfile: *profile,
			backend: *backend, progress: *progFlag, stats: *stats,
			statsJSON: *statsJSON, statsFile: statsFile,
			flameFile: flameFile, flamePath: *flamePath,
			pprofFile: pprofFile, pprofPath: *pprofPath, outFile: outFile,
		})
		return
	}
	src, err := loadSource(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	copts := warp.Options{Pipeline: *pipeline, Cells: *cells}
	var prog *warp.Program
	if *symFlag {
		prog, err = compileSymbolicFor(src, copts, *boundsFl, *backend, *crossFlag)
	} else {
		prog, err = compileFor(src, copts, *backend, *crossFlag)
	}
	if err != nil {
		fail(err)
	}

	inputs := map[string][]float64{}
	if *inPath != "" {
		data, err := os.ReadFile(*inPath)
		if err != nil {
			fail(err)
		}
		if err := json.Unmarshal(data, &inputs); err != nil {
			fail(fmt.Errorf("parsing %s: %w", *inPath, err))
		}
	}
	fillRandom(prog, inputs, *seed)

	runCfg := warp.RunConfig{MaxCycles: *maxCycles, Profile: profiling, Backend: *backend}
	var tick *progressTicker
	if *progFlag && !*crossFlag {
		tick = newProgressTicker(os.Stderr)
		runCfg.Progress = tick.update
	}
	var out map[string][]float64
	var rstats *warp.RunStats
	runStart := time.Now()
	if *crossFlag {
		if traceFile != nil || profiling {
			fail(fmt.Errorf("-crosscheck needs both backends plain; drop -trace/-profile/-flame/-pprof"))
		}
		out, rstats = runCrossCheck(prog, inputs, *maxCycles)
	} else if traceFile != nil {
		out, rstats, err = prog.RunTracedWith(runCfg, inputs, traceFile)
		if cerr := traceFile.Close(); err == nil && cerr != nil {
			err = cerr
		}
		tick.Stop()
		if err != nil {
			failRun(err, *maxCycles)
		}
		fmt.Printf("trace: wrote %s (load in https://ui.perfetto.dev)\n", *tracePath)
	} else {
		out, rstats, err = prog.RunWith(runCfg, inputs)
		tick.Stop()
		if err != nil {
			failRun(err, *maxCycles)
		}
	}
	m := prog.Metrics()
	fmt.Printf("module %s: %d cells, skew %d, %d cycles, peak queue %d (%s)\n",
		m.Name, m.Cells, m.Skew, rstats.Cycles, rstats.MaxQueue, rstats.MaxQueueAt)

	if statsFile != nil {
		wallNS := int64(time.Since(runStart))
		rep := &bench.Report{Schema: bench.Schema, Experiments: []bench.Experiment{
			bench.FromRun("warpsim/"+m.Name, m, rstats,
				&bench.Wall{Iters: 1, MedianNS: wallNS, MinNS: wallNS}),
		}}
		if err := writeClose(statsFile, rep.Write); err != nil {
			fail(fmt.Errorf("-stats-json: %w", err))
		}
		fmt.Printf("stats: wrote %s (%s schema)\n", *statsJSON, bench.Schema)
	}

	writeProfile(rstats.Source, *profile, prog.SchedReport(),
		flameFile, *flamePath, pprofFile, *pprofPath)

	if *stats {
		fmt.Println()
		fmt.Print(rstats.Profile.UtilizationReport())
		fmt.Println()
		fmt.Print(prog.PhaseReport())
		if m.PipelineBackoff {
			fmt.Printf("pipeline backoff: %s\n", m.BackoffReason)
		}
		fmt.Print(decisionLine(rstats.Decision))
	}

	if *check {
		want, err := prog.Interpret(inputs)
		if err != nil {
			fail(fmt.Errorf("interpreter: %w", err))
		}
		for name, w := range want {
			g := out[name]
			for i := range w {
				if !approxEqual(g[i], w[i]) {
					fail(fmt.Errorf("mismatch: %s[%d] = %v, interpreter says %v", name, i, g[i], w[i]))
				}
			}
		}
		fmt.Println("check: simulated outputs match the reference interpreter")
	}

	if outFile != nil {
		data, err := json.MarshalIndent(out, "", " ")
		if err != nil {
			fail(err)
		}
		if _, err := outFile.Write(data); err == nil {
			err = outFile.Close()
		} else {
			outFile.Close()
		}
		if err != nil {
			fail(fmt.Errorf("-o: %w", err))
		}
	} else if !*stats {
		for name, vals := range out {
			n := len(vals)
			if n > 8 {
				fmt.Printf("%s: %v ... (%d values)\n", name, vals[:8], n)
			} else {
				fmt.Printf("%s: %v\n", name, vals)
			}
		}
	}
}

// compileFor compiles src for the chosen backend.  fast and auto want
// a verified program; auto degrades gracefully (an unverifiable
// program compiles plain and runs on the simulator) while fast and
// -crosscheck surface the verification rejection outright.  A plain
// sim run without -crosscheck skips verification entirely.
func compileFor(src string, opts warp.Options, backend string, crosscheck bool) (*warp.Program, error) {
	switch backend {
	case "", warp.BackendAuto, warp.BackendFast:
	case warp.BackendSim:
		if !crosscheck {
			return warp.Compile(src, opts)
		}
	default:
		return nil, fmt.Errorf("bad -backend %q (want auto, sim or fast)", backend)
	}
	vopts := opts
	vopts.Verify = true
	prog, err := warp.Compile(src, vopts)
	if err != nil && backend != warp.BackendFast && !crosscheck && isVerifyError(err) {
		return warp.Compile(src, opts)
	}
	return prog, err
}

// compileSymbolicFor is compileFor's -symbolic twin: the source is a
// ${...} template, compiled once and instantiated at the -bounds
// vector.  Backend handling matches the concrete path — fast and
// -crosscheck demand a verified template, auto degrades to an
// unverified one when verification rejects the instantiation.
func compileSymbolicFor(src string, opts warp.Options, boundsArg, backend string, crosscheck bool) (*warp.Program, error) {
	bounds, err := warp.ParseBounds(boundsArg)
	if err != nil {
		return nil, err
	}
	instantiate := func(o warp.Options) (*warp.Program, error) {
		tmpl, err := warp.CompileTemplate(src, o)
		if err != nil {
			return nil, err
		}
		prog, detail, err := tmpl.ProgramDetail(bounds, nil)
		if err != nil {
			return nil, err
		}
		if detail.Symbolic {
			fmt.Fprintf(os.Stderr, "template: instantiated symbolically from class [%s]\n", detail.Class)
		} else {
			fmt.Fprintf(os.Stderr, "template: concrete fallback (%s)\n", detail.FallbackReason)
		}
		return prog, nil
	}
	switch backend {
	case "", warp.BackendAuto, warp.BackendFast:
	case warp.BackendSim:
		if !crosscheck {
			return instantiate(opts)
		}
	default:
		return nil, fmt.Errorf("bad -backend %q (want auto, sim or fast)", backend)
	}
	vopts := opts
	vopts.Verify = true
	prog, err := instantiate(vopts)
	if err != nil && backend != warp.BackendFast && !crosscheck && isVerifyError(err) {
		return instantiate(opts)
	}
	return prog, err
}

func isVerifyError(err error) bool {
	var verr *verify.Error
	return errors.As(err, &verr)
}

// runCrossCheck executes the program on both backends and fails unless
// they agree bit for bit: identical output words, exactly equal cycle
// counts.  It returns the fast run's results and prints the measured
// wall-clock speedup.
func runCrossCheck(prog *warp.Program, inputs map[string][]float64, maxCycles int64) (map[string][]float64, *warp.RunStats) {
	simStart := time.Now()
	simOut, simStats, err := prog.RunWith(warp.RunConfig{MaxCycles: maxCycles, Backend: warp.BackendSim}, inputs)
	if err != nil {
		failRun(fmt.Errorf("crosscheck (sim): %w", err), maxCycles)
	}
	simWall := time.Since(simStart)
	fastStart := time.Now()
	fastOut, fastStats, err := prog.RunWith(warp.RunConfig{MaxCycles: maxCycles, Backend: warp.BackendFast}, inputs)
	if err != nil {
		failRun(fmt.Errorf("crosscheck (fast): %w", err), maxCycles)
	}
	fastWall := time.Since(fastStart)

	if fastStats.Cycles != simStats.Cycles {
		fail(fmt.Errorf("crosscheck: cycle counts diverge: fast %d, sim %d", fastStats.Cycles, simStats.Cycles))
	}
	words := 0
	for name, sv := range simOut {
		fv := fastOut[name]
		if len(fv) != len(sv) {
			fail(fmt.Errorf("crosscheck: %s has %d fast values, %d sim values", name, len(fv), len(sv)))
		}
		for i := range sv {
			if math.Float64bits(fv[i]) != math.Float64bits(sv[i]) {
				fail(fmt.Errorf("crosscheck: %s[%d] diverges: fast %v, sim %v", name, i, fv[i], sv[i]))
			}
		}
		words += len(sv)
	}
	speedup := float64(simWall) / float64(fastWall)
	fmt.Printf("crosscheck: backends agree — %d cycles, %d output words bit-identical; wall sim %s, fast %s (%.1fx)\n",
		simStats.Cycles, words, simWall.Round(time.Microsecond), fastWall.Round(time.Microsecond), speedup)
	return fastOut, fastStats
}

// loadSource reads the W2 file, falling back to a built-in workload
// when the argument names one instead of an existing file.
func loadSource(arg string) (string, error) {
	if data, err := os.ReadFile(arg); err == nil {
		return string(data), nil
	} else if !os.IsNotExist(err) {
		return "", err
	}
	builtin := map[string]func() string{
		"matmul":     func() string { return workloads.Matmul(10) },
		"polynomial": workloads.PolynomialPaper,
		"conv1d":     workloads.Conv1DPaper,
		"binop":      workloads.BinopPaper,
		"colorseg":   workloads.ColorSegPaper,
		"mandelbrot": workloads.MandelbrotPaper,
		"fft":        workloads.FFTPaper,
	}
	if gen, ok := builtin[arg]; ok {
		return gen(), nil
	}
	return "", fmt.Errorf("no such file or built-in workload: %s", arg)
}

// fillRandom fills any missing input array with seeded random values
// of the declared size.
func fillRandom(prog *warp.Program, inputs map[string][]float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, p := range prog.Params() {
		if p.Out {
			continue
		}
		if _, ok := inputs[p.Name]; ok {
			continue
		}
		arr := make([]float64, p.Size)
		for i := range arr {
			arr[i] = math.Round(rng.Float64()*16-8) / 4
		}
		inputs[p.Name] = arr
	}
}

func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// createOut opens one output path up front, before any compilation or
// simulation, so an unwritable path fails immediately with the flag
// that named it.  An empty path (flag unset) returns nil.
func createOut(flagName, path string) *os.File {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warpsim: %s: cannot write %s: %v\n", flagName, path, err)
		os.Exit(1)
	}
	return f
}

// writeClose runs a writer against the file and closes it, reporting
// the first error — a short write on close (full disk) must not pass
// silently.
func writeClose(f *os.File, write func(w io.Writer) error) error {
	err := write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeProfile emits the source profile in the requested formats: the
// text hot-spot and scheduler reports to stdout for -profile, folded
// stacks for -flame, pprof protobuf for -pprof.
func writeProfile(sp *warp.SourceProfile, print bool, schedReport string,
	flameFile *os.File, flamePath string, pprofFile *os.File, pprofPath string) {
	if sp == nil {
		return
	}
	if print {
		fmt.Println()
		fmt.Print(sp.Report())
		fmt.Println()
		fmt.Print(schedReport)
	}
	if flameFile != nil {
		if err := writeClose(flameFile, sp.WriteFolded); err != nil {
			fail(fmt.Errorf("-flame: %w", err))
		}
		fmt.Printf("profile: wrote %s (folded stacks; flamegraph.pl or speedscope)\n", flamePath)
	}
	if pprofFile != nil {
		if err := writeClose(pprofFile, sp.WritePprof); err != nil {
			fail(fmt.Errorf("-pprof: %w", err))
		}
		fmt.Printf("profile: wrote %s (view with `go tool pprof -top %s`)\n", pprofPath, pprofPath)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "warpsim:", err)
	os.Exit(1)
}

// failRun reports a failed simulation, spelling out a livelock hit on
// the cycle guard (the machine was still making no progress at the
// limit — usually a mismatched IU/cell program or an input shorter than
// the host program expects).
func failRun(err error, maxCycles int64) {
	if errors.Is(err, warp.ErrLivelock) {
		limit := maxCycles
		if limit == 0 {
			limit = 1 << 28
		}
		fmt.Fprintf(os.Stderr, "warpsim: livelock: the simulation made no progress within %d cycles.\n", limit)
		fmt.Fprintf(os.Stderr, "warpsim: the array is deadlocked or the program is larger than the cycle budget;\n")
		fmt.Fprintf(os.Stderr, "warpsim: rerun with a larger -max-cycles if the workload is legitimately long.\n")
		os.Exit(3)
	}
	fail(err)
}

// Command warpd is the long-lived compile-and-run daemon: an HTTP/JSON
// API over the W2 compiler and the Warp simulator, with a
// content-addressed compile cache (compile once, run many) and a
// bounded simulation worker pool with backpressure.
//
// Usage:
//
//	warpd [-addr :8037] [-workers n] [-queue n] [-cache n]
//	      [-timeout 30s] [-max-cycles n] [-log text|json] [-log-level info]
//	      [-flight n] [-debug-addr addr]
//
// Endpoints:
//
//	POST /compile  {"source": "...", "options": {"pipeline": true}}
//	               -> {"program": "<content address>", "cached": bool, ...}
//	POST /run      {"program": "<addr>" | "source": "...",
//	                "inputs": {"z": [...]}, "timeout_ms": 1000,
//	                "backend": "auto"|"sim"|"fast"}
//	               -> {"outputs": {...}, "stats": {"backend": "fast", ...}}
//	               "backend" picks the executor: "auto" (default) runs
//	               verified programs on the fast dataflow executor and
//	               everything else on the cycle-accurate simulator;
//	               "fast" demands the fast executor and returns a
//	               structured 422 (with a hint) when the program is not
//	               verified — e.g. under -no-verify — instead of
//	               silently simulating.  Per-backend run counts export
//	               as warpd_backend_runs_total{backend=...}.
//	POST /batch    {"requests": [<run request>, ...]}
//	GET  /metrics  Prometheus text format
//	GET  /healthz  liveness
//	GET  /debug/requests             last N requests with span trees (JSON)
//	GET  /debug/requests/{id}/trace  one request as a Chrome trace download
//	GET  /debug/requests/{id}/profile  a profiled run's source-line cycle
//	               profile: gzipped pprof by default (feed to `go tool
//	               pprof`), ?format=text or ?format=folded for the
//	               hot-spot report / flame-graph stacks.  Runs opt in
//	               with "profile": true on the run request.
//
// Saturation returns 429 with a Retry-After derived from the observed
// median run latency and queue depth; per-request deadlines abort the
// simulation itself (the run loop polls the context), so a hung or
// oversized job cannot pin a worker.  SIGINT/SIGTERM drain in-flight
// runs before exit.
//
// Every served request emits one structured log record (request ID,
// outcome, per-stage span durations).  -debug-addr starts a second
// listener exposing net/http/pprof — opt-in, and meant to stay off the
// service port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"warp/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8037", "listen address")
		workers   = flag.Int("workers", 4, "concurrent simulations")
		queue     = flag.Int("queue", 64, "admission-queue depth beyond the workers")
		cacheSize = flag.Int("cache", 128, "compiled programs kept resident (LRU)")
		timeout   = flag.Duration("timeout", 30*time.Second, "default per-run deadline")
		maxCycles = flag.Int64("max-cycles", 0, "per-run livelock guard (0 = simulator default, 1<<28)")
		arrays    = flag.Int("arrays", 2, "default fabric width for partitioned run requests")
		noVerify  = flag.Bool("no-verify", false, "skip static microcode verification (verified by default; violations return 422)")
		cworkers  = flag.Int("compile-workers", 0, "per-compilation parallelism (0 = GOMAXPROCS capped at -workers, negative = serial; output is identical at any setting)")
		drain     = flag.Duration("drain", 30*time.Second, "shutdown grace period for in-flight runs")
		logFormat = flag.String("log", "text", "log format: text or json")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
		flight    = flag.Int("flight", 64, "requests kept in the /debug/requests flight recorder (negative disables tracing)")
		debugAddr = flag.String("debug-addr", "", "opt-in listener for net/http/pprof (empty = off)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: warpd [flags]")
		flag.Usage()
		os.Exit(2)
	}

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warpd: %v\n", err)
		os.Exit(2)
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueCap:       *queue,
		CacheSize:      *cacheSize,
		DefaultTimeout: *timeout,
		MaxCycles:      *maxCycles,
		Arrays:         *arrays,
		NoVerify:       *noVerify,
		CompileWorkers: *cworkers,
		Logger:         logger,
		FlightSize:     *flight,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 2)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", *workers,
			"queue", *queue, "cache", *cacheSize, "flight", *flight)
		errc <- httpSrv.ListenAndServe()
	}()

	var debugSrv *http.Server
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *debugAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("debug listener (pprof)", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- err
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String(), "grace", drain.String())
	case err := <-errc:
		logger.Error("listener failed", "error", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "error", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(ctx)
	}
	svc.Close() // waits for every admitted simulation to retire
	cs, ps := svc.CacheStats(), svc.PoolStats()
	logger.Info("done", "cache_hits", cs.Hits, "cache_misses", cs.Misses, "runs_completed", ps.Completed)
}

// buildLogger assembles the slog logger the daemon and the service
// share, on stderr so request logs never mix with piped output.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("bad -log %q: want text or json", format)
}

// Command warpd is the long-lived compile-and-run daemon: an HTTP/JSON
// API over the W2 compiler and the Warp simulator, with a
// content-addressed compile cache (compile once, run many) and a
// bounded simulation worker pool with backpressure.
//
// Usage:
//
//	warpd [-addr :8037] [-workers n] [-queue n] [-cache n]
//	      [-timeout 30s] [-max-cycles n]
//
// Endpoints:
//
//	POST /compile  {"source": "...", "options": {"pipeline": true}}
//	               -> {"program": "<content address>", "cached": bool, ...}
//	POST /run      {"program": "<addr>" | "source": "...",
//	                "inputs": {"z": [...]}, "timeout_ms": 1000}
//	               -> {"outputs": {...}, "stats": {...}}
//	POST /batch    {"requests": [<run request>, ...]}
//	GET  /metrics  Prometheus text format
//	GET  /healthz  liveness
//
// Saturation returns 429 with Retry-After; per-request deadlines abort
// the simulation itself (the run loop polls the context), so a hung or
// oversized job cannot pin a worker.  SIGINT/SIGTERM drain in-flight
// runs before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"warp/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8037", "listen address")
		workers   = flag.Int("workers", 4, "concurrent simulations")
		queue     = flag.Int("queue", 64, "admission-queue depth beyond the workers")
		cacheSize = flag.Int("cache", 128, "compiled programs kept resident (LRU)")
		timeout   = flag.Duration("timeout", 30*time.Second, "default per-run deadline")
		maxCycles = flag.Int64("max-cycles", 0, "per-run livelock guard (0 = simulator default, 1<<28)")
		drain     = flag.Duration("drain", 30*time.Second, "shutdown grace period for in-flight runs")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: warpd [flags]")
		flag.Usage()
		os.Exit(2)
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueCap:       *queue,
		CacheSize:      *cacheSize,
		DefaultTimeout: *timeout,
		MaxCycles:      *maxCycles,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("warpd: listening on %s (%d workers, queue %d, cache %d)",
			*addr, *workers, *queue, *cacheSize)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("warpd: %s; draining in-flight runs (grace %s)", sig, *drain)
	case err := <-errc:
		log.Fatalf("warpd: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("warpd: shutdown: %v", err)
	}
	svc.Close() // waits for every admitted simulation to retire
	cs, ps := svc.CacheStats(), svc.PoolStats()
	log.Printf("warpd: done (cache %d/%d hits/misses, %d runs completed)",
		cs.Hits, cs.Misses, ps.Completed)
}

package warp_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls out.
// Run with:
//
//	go test -bench=. -benchmem
//
// Shape expectations (absolute numbers depend on this machine, not the
// 1986 Perq/Warp):
//
//   - Fig 3-1: skewed latency 1 vs SIMD latency 4;
//   - Tables 6-1..6-4: minimum skews 3 and 18; the pairwise bound is
//     asymptotically cheaper than exact enumeration as trip counts grow
//     (BenchmarkAblationSkewMethods);
//   - Table 6-5: allocations (3,6,2), (4,2,2), (5,1,3);
//   - Table 7-1: compile times in milliseconds (the paper: minutes),
//     with the same relative ordering of program complexity;
//   - throughput: software pipelining reaches ~1 cycle/result steady
//     state where list scheduling needs ~11-12.

import (
	"fmt"
	"testing"

	"warp"
	"warp/internal/iugen"
	"warp/internal/skew"
	"warp/internal/workloads"
)

// ---------------------------------------------------------------------
// Figure 3-1: SIMD vs skewed computation model.

func BenchmarkFig3_1_ModelLatency(b *testing.B) {
	deps := []skew.StageDep{{Producer: 3, Consumer: 3}}
	var simd, skewed int64
	for i := 0; i < b.N; i++ {
		simd = skew.SIMDLatency(4, deps)
		skewed = skew.SkewedLatency(4, deps)
	}
	b.ReportMetric(float64(simd), "simd-latency")
	b.ReportMetric(float64(skewed), "skewed-latency")
}

// ---------------------------------------------------------------------
// Tables 6-1 and 6-2: exact minimum skew of the worked examples.

func BenchmarkTable6_1_MinSkewExact(b *testing.B) {
	p := skew.Fig62()
	var s int64
	for i := 0; i < b.N; i++ {
		var err error
		s, err = skew.MinSkewExact(p, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s), "min-skew")
}

func BenchmarkTable6_2_MinSkewExact(b *testing.B) {
	p := skew.Fig64()
	var s int64
	for i := 0; i < b.N; i++ {
		var err error
		s, err = skew.MinSkewExact(p, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s), "min-skew")
}

// ---------------------------------------------------------------------
// Table 6-3: characteristic-vector extraction.

func BenchmarkTable6_3_Vectors(b *testing.B) {
	p := skew.Fig64()
	for i := 0; i < b.N; i++ {
		if got := len(skew.Statements(p, skew.Output)); got != 5 {
			b.Fatalf("got %d output statements", got)
		}
	}
}

// ---------------------------------------------------------------------
// Table 6-4: the closed-form pairwise bound.

func BenchmarkTable6_4_MinSkewBound(b *testing.B) {
	p := skew.Fig64()
	var bound skew.Rat
	for i := 0; i < b.N; i++ {
		var err error
		bound, _, err = skew.MinSkewBound(p, p, skew.BoundPaper)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bound.Float(), "bound")
}

// ---------------------------------------------------------------------
// Table 6-5: IU operand selection.

func BenchmarkTable6_5_Allocations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := iugen.Table65()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// ---------------------------------------------------------------------
// Table 7-1: full compilation of the five sample programs at the
// paper's sizes.  ns/op is this reproduction's "compile time" column.

func benchCompile(b *testing.B, src string) {
	b.Helper()
	var m warp.Metrics
	for i := 0; i < b.N; i++ {
		prog, err := warp.Compile(src, warp.Options{Pipeline: true})
		if err != nil {
			b.Fatal(err)
		}
		m = prog.Metrics()
	}
	b.ReportMetric(float64(m.CellInstrs), "cell-ucode")
	b.ReportMetric(float64(m.IUInstrs), "iu-ucode")
}

func BenchmarkTable7_1_Compile_Conv1D(b *testing.B)     { benchCompile(b, workloads.Conv1DPaper()) }
func BenchmarkTable7_1_Compile_Binop(b *testing.B)      { benchCompile(b, workloads.BinopPaper()) }
func BenchmarkTable7_1_Compile_ColorSeg(b *testing.B)   { benchCompile(b, workloads.ColorSegPaper()) }
func BenchmarkTable7_1_Compile_Mandelbrot(b *testing.B) { benchCompile(b, workloads.MandelbrotPaper()) }
func BenchmarkTable7_1_Compile_Polynomial(b *testing.B) { benchCompile(b, workloads.PolynomialPaper()) }

// ---------------------------------------------------------------------
// §2/§7 throughput: simulated machine cycles per result.

func benchSim(b *testing.B, src string, inputs map[string][]float64, results int64, pipeline bool) {
	b.Helper()
	prog, err := warp.Compile(src, warp.Options{Pipeline: pipeline})
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		_, stats, err := prog.Run(inputs)
		if err != nil {
			b.Fatal(err)
		}
		cycles = stats.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(results), "cycles/result")
}

func BenchmarkSimThroughput_Polynomial_Plain(b *testing.B) {
	benchSim(b, workloads.Polynomial(10, 100),
		map[string][]float64{"z": make([]float64, 100), "c": make([]float64, 10)}, 100, false)
}

func BenchmarkSimThroughput_Polynomial_Pipelined(b *testing.B) {
	benchSim(b, workloads.Polynomial(10, 100),
		map[string][]float64{"z": make([]float64, 100), "c": make([]float64, 10)}, 100, true)
}

func BenchmarkSimThroughput_Conv1D_Plain(b *testing.B) {
	benchSim(b, workloads.Conv1D(9, 512),
		map[string][]float64{"x": make([]float64, 512), "w": make([]float64, 9)}, 511, false)
}

func BenchmarkSimThroughput_Conv1D_Pipelined(b *testing.B) {
	benchSim(b, workloads.Conv1D(9, 512),
		map[string][]float64{"x": make([]float64, 512), "w": make([]float64, 9)}, 511, true)
}

func BenchmarkSimThroughput_Matmul(b *testing.B) {
	benchSim(b, workloads.Matmul(10),
		map[string][]float64{"a": make([]float64, 100), "bmat": make([]float64, 100)}, 100, true)
}

// ---------------------------------------------------------------------
// Ablation: exact enumeration vs the paper's closed-form bound as trip
// counts grow.  The bound's cost is independent of the iteration count,
// which is the point of §6.2.1's formulation.

func scaledFig64(scale int64) *skew.Prog {
	return skew.Build(
		skew.Nop(),
		skew.Rep(5*scale, skew.In(), skew.In(), skew.Nop()),
		skew.Nop(), skew.Nop(),
		skew.Rep(2*scale, skew.Out(), skew.Out()),
		skew.Nop(), skew.Nop(),
		skew.Rep(2*scale, skew.Out(), skew.Out(), skew.Out(), skew.Nop(), skew.Nop()),
		skew.Nop(),
		// Pad the stream: input and output counts must match.
		skew.Rep(6*scale, skew.In(), skew.Out()),
	)
}

func BenchmarkAblationSkewMethods(b *testing.B) {
	for _, scale := range []int64{1, 100, 10000} {
		p := scaledFig64(scale)
		b.Run(fmt.Sprintf("exact/scale=%d", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := skew.MinSkewExact(p, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("bound/scale=%d", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := skew.MinSkewBound(p, p, skew.BoundPaper); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: local optimizer on/off over a redundancy-heavy kernel
// (shared subexpressions, identities, a long associative chain): the
// optimized build must produce a shorter cell program.

const redundantSrc = `
module red (xs in, ys out)
float xs[128];
float ys[64];
cellprogram (c : 0 : 0)
begin
    function f
    begin
        float a, b, r;
        int i;
        for i := 0 to 63 do begin
            receive (L, X, a, xs[2*i]);
            receive (L, Y, b, xs[2*i+1]);
            r := (a + b) * (a + b) + (b + a) * 1.0
               + ((a + b) + (a + b) + (a + b) + (a + b)
               +  (a + b) + (a + b) + (a + b) + (a + b)) - 0.0;
            send (R, X, r + (2.0 + 3.0) * 4.0, ys[i]);
        end;
    end
    call f;
end
`

func BenchmarkAblationOptimizer(b *testing.B) {
	src := redundantSrc
	for _, noopt := range []bool{false, true} {
		name := "opt"
		if noopt {
			name = "noopt"
		}
		b.Run(name, func(b *testing.B) {
			var m warp.Metrics
			for i := 0; i < b.N; i++ {
				prog, err := warp.Compile(src, warp.Options{NoOptimize: noopt})
				if err != nil {
					b.Fatal(err)
				}
				m = prog.Metrics()
			}
			b.ReportMetric(float64(m.CellInstrs), "cell-ucode")
			b.ReportMetric(float64(m.CellCycles), "cell-cycles")
		})
	}
}

// Ablation: the cost of the cycle-accurate simulation itself, per
// simulated machine cycle.

func BenchmarkSimulatorSpeed(b *testing.B) {
	src := workloads.Binop(64, 64)
	prog, err := warp.Compile(src, warp.Options{Pipeline: true})
	if err != nil {
		b.Fatal(err)
	}
	inputs := map[string][]float64{
		"a": make([]float64, 64*64),
		"b": make([]float64, 64*64),
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		_, stats, err := prog.Run(inputs)
		if err != nil {
			b.Fatal(err)
		}
		cycles += stats.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.Elapsed().Nanoseconds())*1e9, "machine-cycles/s")
}

// §2's FFT headline: compile and simulate the 1024-point transform.

func BenchmarkFFT1024_Compile(b *testing.B) {
	benchCompile(b, workloads.FFTPaper())
}

func BenchmarkFFT1024_Simulate(b *testing.B) {
	const n = 1024
	prog, err := warp.Compile(workloads.FFT(n), warp.Options{})
	if err != nil {
		b.Fatal(err)
	}
	inputs := map[string][]float64{
		"twid": workloads.FFTTwiddles(n),
		"x":    make([]float64, 2*n),
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		_, stats, err := prog.Run(inputs)
		if err != nil {
			b.Fatal(err)
		}
		cycles = stats.Cycles
	}
	b.ReportMetric(float64(cycles), "machine-cycles")
}

package warp_test

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"warp"
	"warp/internal/workloads"
)

// TestSourceProfileExactPolynomial is the acceptance check on the
// profiler's exactness guarantee, on the Figure 4-2 golden program
// (polynomial evaluation): the per-source-line cycle totals sum
// exactly to the simulator's total busy+stall cycles over all cells —
// no unattributed cycles — and the folded stacks account for the same
// total.
func TestSourceProfileExactPolynomial(t *testing.T) {
	prog, err := warp.Compile(workloads.Polynomial(10, 100), warp.Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string][]float64{"z": make([]float64, 100), "c": make([]float64, 10)}
	_, rs, err := prog.RunWith(warp.RunConfig{Profile: true}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cycles != 225 {
		t.Errorf("profiling perturbed the run: %d cycles, want the 225 baseline", rs.Cycles)
	}
	sp := rs.Source
	if sp == nil {
		t.Fatal("RunConfig.Profile set but RunStats.Source is nil")
	}

	// The simulator's ground truth: busy+starved+bubble over all cells.
	var simTotal int64
	for i := range rs.Profile.Cell {
		simTotal += rs.Profile.Cell[i].Active()
	}
	if simTotal == 0 {
		t.Fatal("run recorded no active cycles")
	}
	var lineTotal int64
	for i := range sp.Lines {
		lineTotal += sp.Lines[i].Total()
	}
	if lineTotal != simTotal {
		t.Errorf("per-line totals sum to %d, simulator busy+stall is %d (unattributed cycles)", lineTotal, simTotal)
	}
	if sp.Attributed() != simTotal {
		t.Errorf("Attributed() = %d, want %d", sp.Attributed(), simTotal)
	}
	var stackTotal int64
	for i := range sp.Stacks {
		stackTotal += sp.Stacks[i].Cycles
	}
	if stackTotal != simTotal {
		t.Errorf("folded stacks sum to %d, want %d", stackTotal, simTotal)
	}

	// The profile must attribute to real source lines, not only the
	// synthetic preamble bucket.
	real := 0
	for i := range sp.Lines {
		if sp.Lines[i].Line > 0 && sp.Lines[i].Total() > 0 {
			real++
		}
	}
	if real < 2 {
		t.Errorf("only %d real source lines attributed:\n%s", real, sp.Report())
	}

	rep := sp.Report()
	for _, want := range []string{"source profile:", "busy", "starved", "bubble"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}

	var folded bytes.Buffer
	if err := sp.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(folded.String()), "\n") {
		if line == "" {
			continue
		}
		sep := strings.LastIndexByte(line, ' ')
		if sep < 1 {
			t.Fatalf("folded line has no count: %q", line)
		}
		if !strings.Contains(line[:sep], ";") && !strings.HasPrefix(line[:sep], "poly") {
			t.Errorf("folded stack has no frames: %q", line)
		}
	}
}

// TestSourceProfileNeutral proves profiling never changes machine
// behavior: every pinned obs baseline holds with Profile on.
func TestSourceProfileNeutral(t *testing.T) {
	for _, j := range obsJobs {
		t.Run(j.name, func(t *testing.T) {
			prog, err := warp.Compile(j.src, warp.Options{Pipeline: j.pipe})
			if err != nil {
				t.Fatal(err)
			}
			_, rs, err := prog.RunWith(warp.RunConfig{Profile: true}, j.inputs())
			if err != nil {
				t.Fatal(err)
			}
			if rs.Cycles != j.cycles {
				t.Errorf("cycles with profiling = %d, want %d (baseline)", rs.Cycles, j.cycles)
			}
			if rs.Source == nil || rs.Source.Attributed() == 0 {
				t.Error("no source attribution recorded")
			}
		})
	}
}

// TestPprofRoundTrip checks the hand-rolled pprof encoding: the output
// is valid gzip, and — when the Go toolchain is on PATH — `go tool
// pprof -top` accepts it and shows the module frame, the same check CI
// runs.
func TestPprofRoundTrip(t *testing.T) {
	prog, err := warp.Compile(workloads.Polynomial(10, 100), warp.Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := prog.SourceProfile(map[string][]float64{"z": make([]float64, 100), "c": make([]float64, 10)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sp.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("pprof output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gzip stream corrupt: %v", err)
	}
	if len(raw) < 64 {
		t.Fatalf("suspiciously small profile: %d bytes", len(raw))
	}

	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH; CI runs the pprof round-trip")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "cycles.pb.gz")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(goBin, "tool", "pprof", "-top", path)
	cmd.Env = append(os.Environ(), "PPROF_NO_BROWSER=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -top failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "poly") {
		t.Errorf("pprof top does not show the module frame:\n%s", out)
	}
}

// TestSchedCounters checks the compiler-introspection half on the four
// BENCH workloads: every compilation exports scheduler counters, and
// colorseg — the compile-time outlier — is identifiable from the data
// (its modulo-scheduling search dwarfs the others').
func TestSchedCounters(t *testing.T) {
	jobs := []struct {
		name string
		src  string
	}{
		{"1d-conv", workloads.Conv1D(9, 512)},
		{"binop", workloads.Binop(512, 512)},
		{"colorseg", workloads.ColorSeg(512, 512, 10)},
		{"polynomial", workloads.Polynomial(10, 100)},
	}
	placements := map[string]int64{}
	for _, j := range jobs {
		prog, err := warp.Compile(j.src, warp.Options{Pipeline: true})
		if err != nil {
			t.Fatalf("%s: %v", j.name, err)
		}
		sched := prog.Sched()
		if sched == nil {
			t.Fatalf("%s: no scheduler profile", j.name)
		}
		tot := sched.Totals()
		if tot.Loops == 0 {
			t.Errorf("%s: no loops recorded", j.name)
		}
		if tot.Attempts == 0 || tot.Placements == 0 {
			t.Errorf("%s: modulo scheduler recorded no search work: %+v", j.name, tot)
		}
		placements[j.name] = tot.Placements
		if rep := sched.Report(); !strings.Contains(rep, "scheduler:") {
			t.Errorf("%s: malformed sched report:\n%s", j.name, rep)
		}
		// The cellgen phase note carries the counters into the span data.
		found := false
		for _, ph := range prog.Phases() {
			if ph.Name == "cellgen" && strings.Contains(ph.Note, "placements") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: cellgen phase note lacks scheduler counters", j.name)
		}
	}
	if placements["colorseg"] <= placements["polynomial"] ||
		placements["colorseg"] <= placements["1d-conv"] {
		t.Errorf("colorseg's scheduler search (%d placements) should dominate polynomial (%d) and 1d-conv (%d)",
			placements["colorseg"], placements["polynomial"], placements["1d-conv"])
	}
}

// TestPartitionedSourceProfile checks fabric aggregation end to end: a
// profiled partitioned run merges every tile's exact profile into
// FabricStats.Source.
func TestPartitionedSourceProfile(t *testing.T) {
	prog, err := warp.Compile(workloads.MatmulRect(4, 4, 4), warp.Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	m, k, n := 8, 4, 8
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	for i := range a {
		a[i] = float64(i % 7)
	}
	for i := range b {
		b[i] = float64(i % 5)
	}
	_, fs, err := prog.RunPartitioned(warp.RunConfig{Arrays: 2, Profile: true},
		warp.MatmulProblem(m, k, n, a, b))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Source == nil {
		t.Fatal("profiled partitioned run has no aggregate source profile")
	}
	if fs.Source.Attributed() == 0 || len(fs.Source.Lines) == 0 {
		t.Errorf("empty aggregate profile: %+v", fs.Source)
	}
	if fs.Source.Cycles != fs.AggregateCycles {
		t.Errorf("aggregate profile cycles %d != fabric aggregate %d", fs.Source.Cycles, fs.AggregateCycles)
	}

	// Unprofiled runs must not grow a profile.
	_, fs2, err := prog.RunPartitioned(warp.RunConfig{Arrays: 2},
		warp.MatmulProblem(m, k, n, a, b))
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Source != nil {
		t.Error("unprofiled run grew a source profile")
	}
}

package warp

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"warp/internal/driver"
	"warp/internal/obs"
	"warp/internal/symbolic"
)

// Template is a symbolically compiled program: W2 source with ${...}
// size parameters, compiled once into closed-form microcode templates
// and instantiated per problem size in microseconds.  The instantiated
// Program is byte-identical to what Compile would produce on the
// substituted source — bounds the closed forms cannot cover fall back
// to a concrete compile transparently, so acceptance, rejection and
// artifacts always match the concrete compiler.
//
// A Template is safe for concurrent use from many goroutines.
type Template struct {
	t    *symbolic.Template
	opts Options
}

// TemplateStats is a snapshot of a template's lifetime counters:
// symbolic instantiations, concrete fallbacks, residue classes fitted
// and probe compiles spent fitting them.
type TemplateStats = symbolic.Stats

// TemplateDetail reports how one instantiation request was served.
type TemplateDetail = symbolic.Detail

// CompileTemplate parses ${...}-parameterized W2 source into a
// Template.  No compilation happens yet: the first Program call for a
// bound vector's residue class pays the probe compiles, later calls in
// the class instantiate from the fitted closed forms.
func CompileTemplate(src string, opts Options) (*Template, error) {
	t, err := symbolic.CompileTemplate(src, driver.Options{
		NoOptimize:     opts.NoOptimize,
		Pipeline:       opts.Pipeline,
		Cells:          opts.Cells,
		Verify:         opts.Verify,
		CompileWorkers: opts.CompileWorkers,
	})
	if err != nil {
		return nil, err
	}
	return &Template{t: t, opts: opts}, nil
}

// Params returns the template's bound parameters, sorted.
func (t *Template) Params() []string { return t.t.Params() }

// Stats returns a snapshot of the template's counters.
func (t *Template) Stats() TemplateStats { return t.t.Stats() }

// Classes returns the number of residue classes currently fitted or
// pending.
func (t *Template) Classes() int { return t.t.Classes() }

// Program instantiates the template at one bound vector.
func (t *Template) Program(bounds map[string]int64) (*Program, error) {
	p, _, err := t.ProgramDetail(bounds, nil)
	return p, err
}

// ProgramDetail instantiates like Program and additionally reports how
// the request was served (symbolically or by concrete fallback).  rec,
// when non-nil, receives the instantiation's phase events alongside
// the Options.Recorder given at CompileTemplate time — the service
// layer uses it to put template phases on request-scoped traces.
func (t *Template) ProgramDetail(bounds map[string]int64, rec obs.Recorder) (*Program, *TemplateDetail, error) {
	start := time.Now()
	c, detail, err := t.t.InstantiateObserved(bounds, obs.Multi(t.opts.Recorder, rec))
	if err != nil {
		return nil, nil, err
	}
	return &Program{c: c, rec: t.opts.Recorder, compileTime: time.Since(start)}, detail, nil
}

// ModeledCycles evaluates the closed-form cycle prediction for one
// bound vector — the modeled total the fast-execution backend and
// progress reporting use — without a concrete compile.
func (t *Template) ModeledCycles(bounds map[string]int64) (int64, error) {
	return t.t.ModeledCycles(bounds)
}

// Check instantiates the template at bounds and independently compiles
// the substituted source from scratch, failing unless the two
// artifacts are byte-identical.  It backs `w2c -symbolic -check`.
func (t *Template) Check(bounds map[string]int64) error {
	return t.t.Check(bounds)
}

// ParseBounds parses a command-line bound vector of the form
// "n=32,k=5" into a bounds map (whitespace around entries is allowed).
func ParseBounds(s string) (map[string]int64, error) {
	bounds := map[string]int64{}
	if strings.TrimSpace(s) == "" {
		return bounds, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad bound %q (want name=value)", part)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad bound %q: %v", part, err)
		}
		bounds[strings.TrimSpace(name)] = n
	}
	return bounds, nil
}

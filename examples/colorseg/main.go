// Color separation: the paper's ColorSeg workload — each of the ten
// cells holds one reference color, and every image pixel is labelled
// with the class of the nearest one (§7, Table 7-1).  The running best
// distance and class flow through the array on channel Y while the
// pixel stream flows on X, so the whole classification is a single pass
// through the array.
package main

import (
	"fmt"
	"log"
	"math"

	"warp"
	"warp/internal/workloads"
)

func main() {
	const side, ncells = 24, 10
	src := workloads.ColorSeg(side, side, ncells)

	// Ten reference colors spread over a color wheel.
	refs := make([]float64, 4*ncells)
	for c := 0; c < ncells; c++ {
		angle := float64(c) / ncells * 2 * math.Pi
		refs[4*c] = 128 + 100*math.Cos(angle)
		refs[4*c+1] = 128 + 100*math.Sin(angle)
		refs[4*c+2] = float64(c) * 25
		refs[4*c+3] = float64(c)
	}
	// A synthetic image: smooth gradients.
	image := make([]float64, 3*side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			i := y*side + x
			image[3*i] = float64(x) / side * 255
			image[3*i+1] = float64(y) / side * 255
			image[3*i+2] = 128
		}
	}

	prog, err := warp.Compile(src, warp.Options{Pipeline: true})
	if err != nil {
		log.Fatal(err)
	}
	inputs := map[string][]float64{"refs": refs, "image": image}
	out, stats, err := prog.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	want := workloads.ColorSegRef(refs, image)
	hist := make([]int, ncells)
	for i, cls := range out["classes"] {
		if cls != want[i] {
			log.Fatalf("pixel %d classified %v, want %v", i, cls, want[i])
		}
		hist[int(cls)]++
	}
	fmt.Printf("segmented %dx%d image on %d cells in %d cycles (skew %d)\n",
		side, side, prog.Cells(), stats.Cycles, prog.Skew())
	fmt.Print("class histogram:")
	for c, n := range hist {
		fmt.Printf(" %d:%d", c, n)
	}
	fmt.Println("\nclassification verified against the host reference: OK")
}

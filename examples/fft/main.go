// FFT: the computation behind the paper's §2 headline — "a 10-cell
// Warp can process 1024-point complex fast Fourier transforms at a
// rate of one FFT every 600 microseconds".  This example compiles the
// 1024-point decimation-in-time FFT as a W2 program (the input
// bit-reversal is a 10-deep nest of binary loops whose host and memory
// indices are both affine in the bit variables — no run-time
// bit-twiddling), runs it on the simulated machine, and checks the
// spectrum against a direct DFT.
package main

import (
	"fmt"
	"log"
	"math"

	"warp"
	"warp/internal/workloads"
)

func main() {
	const n = 1024
	src := workloads.FFT(n)
	prog, err := warp.Compile(src, warp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m := prog.Metrics()
	fmt.Printf("compiled %d-point FFT: %d cell instrs, %d IU instrs, %d IU registers, %d table words\n",
		n, m.CellInstrs, m.IUInstrs, m.IUAddrRegs, m.IUTable)

	// A two-tone signal: bins 5 and 100 should dominate.
	x := make([]float64, 2*n)
	for t := 0; t < n; t++ {
		v := math.Sin(2*math.Pi*5*float64(t)/n) + 0.5*math.Cos(2*math.Pi*100*float64(t)/n)
		x[2*t] = v
	}
	inputs := map[string][]float64{
		"twid": workloads.FFTTwiddles(n),
		"x":    x,
	}
	out, stats, err := prog.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d machine cycles\n", stats.Cycles)

	// Verify against the O(n²) DFT on a subsample of bins (the full
	// comparison is what the test suite does at smaller sizes).
	mag := func(y []float64, k int) float64 {
		return math.Hypot(y[2*k], y[2*k+1])
	}
	want := workloads.FFTRef(x)
	worst := 0.0
	for _, k := range []int{0, 1, 5, 100, 511, 512, n - 100, n - 5, n - 1} {
		d := math.Abs(mag(out["y"], k) - mag(want, k))
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("|Y[5]| = %.1f, |Y[100]| = %.1f (expected magnitudes %d and %d)\n",
		mag(out["y"], 5), mag(out["y"], 100), n/2, n/4)
	fmt.Printf("max deviation from direct DFT on probed bins: %.2e\n", worst)
	if worst > 1e-6*n {
		log.Fatal("spectrum diverges from the DFT")
	}
	fmt.Println("OK")
}

// Convolution: the paper's 1d-conv workload — kernel of 9, one kernel
// element per cell (§7, Table 7-1).  The example compiles the program
// twice, with and without software pipelining, to show the throughput
// the paper quotes ("all the arithmetic units are fully utilized in the
// innermost loop, giving a throughput of one result per cycle").
package main

import (
	"fmt"
	"log"
	"math"

	"warp"
	"warp/internal/workloads"
)

func main() {
	const k, n = 9, 512
	src := workloads.Conv1D(k, n)

	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.1)
	}
	w := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.2, 0.15, 0.1, 0.05}

	inputs := map[string][]float64{"x": x, "w": w}
	ref := workloads.Conv1DRef(x, w)

	for _, pipelined := range []bool{false, true} {
		prog, err := warp.Compile(src, warp.Options{Pipeline: pipelined})
		if err != nil {
			log.Fatal(err)
		}
		out, stats, err := prog.Run(inputs)
		if err != nil {
			log.Fatal(err)
		}
		for i := range ref {
			if math.Abs(out["results"][i]-ref[i]) > 1e-9 {
				log.Fatalf("results[%d] = %v, want %v", i, out["results"][i], ref[i])
			}
		}
		mode := "list-scheduled"
		if pipelined {
			mode = "software-pipelined"
		}
		fmt.Printf("%-19s %6d cycles for %d results (%.2f cycles/result), skew %d\n",
			mode, stats.Cycles, len(ref), float64(stats.Cycles)/float64(len(ref)), prog.Skew())
	}
	fmt.Println("results verified against direct convolution: OK")
}

// Skewlab: a tour of the compile-time synchronization analysis — the
// paper's core contribution.  It compiles a small program, extracts the
// per-channel timed I/O programs, shows every I/O statement's five
// characteristic vectors and closed-form timing function τ(n)
// (§6.2.1), and compares the exact minimum skew against the paper's
// cheap pairwise bound and the resulting queue-occupancy proof.
package main

import (
	"fmt"
	"log"

	"warp"
	"warp/internal/skew"
)

const src = `
/* A two-phase cell: absorb a tile into memory, then stream products. */
module lab (xs in, ys out)
float xs[24];
float ys[24];
cellprogram (cid : 0 : 3)
begin
    function f
    begin
        float v;
        float tile[8];
        int i, j, k;
        for i := 0 to 7 do begin
            receive (L, X, v, xs[i]);
            tile[i] := v;
            send (R, X, v);
        end;
        for j := 0 to 7 do begin
            receive (L, X, v, xs[8+j]);
            send (R, X, v * tile[j], ys[j]);
        end;
        for k := 0 to 7 do begin
            receive (L, X, v, xs[16+k]);
            send (R, X, v + tile[7-k], ys[8+k]);
        end;
    end
    call f;
end
`

func main() {
	prog, err := warp.Compile(src, warp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled for %d cells; chosen skew: %d cycles\n\n", prog.Cells(), prog.Skew())

	x := prog.ChannelTiming('X')
	fmt.Println("characteristic vectors of every I/O statement on channel X:")
	for _, kind := range []skew.Kind{skew.Input, skew.Output} {
		for _, v := range skew.Statements(x, kind) {
			fmt.Printf("  %s\n", v)
		}
	}

	fmt.Println("\nclosed-form timing functions (Table 6-4 style):")
	for _, kind := range []skew.Kind{skew.Input, skew.Output} {
		for _, v := range skew.Statements(x, kind) {
			sym := skew.NewTimingFunc(v).Symbolic()
			kindName := "I"
			if kind == skew.Output {
				kindName = "O"
			}
			fmt.Printf("  %s(%d): τ(n) = %-30s [%s]\n", kindName, v.ID, sym, sym.DomainString())
		}
	}

	exact, err := skew.MinSkewExact(x, x)
	if err != nil {
		log.Fatal(err)
	}
	bound, pairs, err := skew.MinSkewBound(x, x, skew.BoundPaper)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimum skew: exact %d; pairwise bound %s over %d statement pairs\n",
		exact, bound, len(pairs))

	occ, err := skew.MaxOccupancy(x, x, prog.Skew())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proven queue occupancy at the chosen skew: %d of 128 words\n", occ)
	if _, err := skew.MaxOccupancy(x, x, exact-1); err != nil {
		fmt.Printf("skew %d (one below minimum) underflows, as it must: %v\n", exact-1, err)
	}

	vs, err := skew.VariableSkew(x, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe §6.2.1 variable-skew alternative:\n%s", vs.Describe())

	// Finally run the thing and make sure the machine agrees.
	inputs := map[string][]float64{"xs": make([]float64, 24)}
	for i := range inputs["xs"] {
		inputs["xs"][i] = float64(i) / 4
	}
	out, stats, err := prog.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	want, err := prog.Interpret(inputs)
	if err != nil {
		log.Fatal(err)
	}
	for i := range want["ys"] {
		if out["ys"][i] != want["ys"][i] {
			log.Fatalf("ys[%d]: simulator %v vs interpreter %v", i, out["ys"][i], want["ys"][i])
		}
	}
	fmt.Printf("\nsimulated %d cycles; peak data queue %d; outputs match the interpreter: OK\n",
		stats.Cycles, stats.MaxQueue)
}

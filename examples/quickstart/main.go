// Quickstart: compile the paper's Figure 4-1 polynomial-evaluation
// program, run it on the simulated 10-cell Warp array, and check the
// results against Horner's rule computed directly.
package main

import (
	"fmt"
	"log"
	"math"

	"warp"
)

const src = `
/* Polynomial evaluation (Figure 4-1): a polynomial with 10
   coefficients is evaluated for 100 data points on 10 cells. */
module polynomial (z in, c in, results out)
float z[100], c[10];
float results[100];
cellprogram (cid : 0 : 9)
begin
    function poly
    begin
        float coeff, temp, xin, yin, ans;
        int i;

        /* Every cell saves the first coefficient that reaches it,
           consumes the data and passes the remaining coefficients. */
        receive (L, X, coeff, c[0]);
        for i := 1 to 9 do begin
            receive (L, X, temp, c[i]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);

        /* Horner's rule: multiply the accumulated result with the
           incoming data point and add this cell's coefficient. */
        for i := 0 to 99 do begin
            receive (L, X, xin, z[i]);
            receive (L, Y, yin, 0.0);
            send (R, X, xin);
            ans := coeff + yin*xin;
            send (R, Y, ans, results[i]);
        end;
    end
    call poly;
end
`

func main() {
	prog, err := warp.Compile(src, warp.Options{Pipeline: true})
	if err != nil {
		log.Fatal(err)
	}
	m := prog.Metrics()
	fmt.Printf("compiled %s for %d cells: %d cell instructions, %d IU instructions, skew %d cycles\n",
		m.Name, m.Cells, m.CellInstrs, m.IUInstrs, m.Skew)

	// Evaluate P(z) = z^9 + 2z^8 + ... + 10 over z = 0.00, 0.02, ...
	z := make([]float64, 100)
	c := make([]float64, 10)
	for i := range z {
		z[i] = float64(i) * 0.02
	}
	for i := range c {
		c[i] = float64(i + 1)
	}
	out, stats, err := prog.Run(map[string][]float64{"z": z, "c": c})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d machine cycles (%.2f cycles per result)\n",
		stats.Cycles, float64(stats.Cycles)/float64(len(z)))

	worst := 0.0
	for i, x := range z {
		want := 0.0
		for _, cv := range c {
			want = want*x + cv
		}
		if d := math.Abs(out["results"][i] - want); d > worst {
			worst = d
		}
	}
	fmt.Printf("P(%.2f) = %.6f, P(%.2f) = %.6f, ... (100 points)\n",
		z[0], out["results"][0], z[99], out["results"][99])
	fmt.Printf("max deviation from Horner's rule: %g\n", worst)
	if worst > 1e-9 {
		log.Fatal("results diverge from the reference")
	}
	fmt.Println("OK")
}

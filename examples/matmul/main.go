// Matrix multiplication: C = A×B on an n-cell array, the workload the
// paper's §2.2 uses to motivate IU-generated addresses ("when
// multiplying two matrices, each cell computes some columns of the
// result; all cells access the same local memory location").  Here cell
// k stores row k of B in its 4K-word local memory during a distribution
// phase — every load address is produced by the IU and broadcast down
// the Adr path — and partial sums accumulate along the array.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"warp"
	"warp/internal/workloads"
)

func main() {
	const n = 10
	src := workloads.Matmul(n)

	rng := rand.New(rand.NewSource(3))
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = math.Round(rng.Float64()*10-5) / 2
		b[i] = math.Round(rng.Float64()*10-5) / 2
	}

	prog, err := warp.Compile(src, warp.Options{Pipeline: true})
	if err != nil {
		log.Fatal(err)
	}
	m := prog.Metrics()
	fmt.Printf("compiled %dx%d matmul for %d cells: %d cell instrs, %d IU instrs, %d IU address registers, %d table words\n",
		n, n, m.Cells, m.CellInstrs, m.IUInstrs, m.IUAddrRegs, m.IUTable)

	out, stats, err := prog.Run(map[string][]float64{"a": a, "bmat": b})
	if err != nil {
		log.Fatal(err)
	}
	want := workloads.MatmulRef(a, b, n)
	for i := range want {
		if math.Abs(out["c"][i]-want[i]) > 1e-9 {
			log.Fatalf("c[%d] = %v, want %v", i, out["c"][i], want[i])
		}
	}
	fmt.Printf("C = A x B verified elementwise in %d machine cycles (skew %d)\n",
		stats.Cycles, prog.Skew())
	fmt.Println("OK")
}

module warp

go 1.22

// Package warp is a reproduction of the W2 optimizing compiler for the
// CMU Warp systolic array, after Gross & Lam, "Compilation for a
// High-performance Systolic Array" (PLDI 1986), together with a
// cycle-accurate simulator of the Warp machine that stands in for the
// 1986 hardware.
//
// The package compiles W2 — a block-structured language with explicit
// asynchronous send/receive communication between neighbouring cells —
// into microcode for the Warp cells, for the interface unit (IU) that
// generates their addresses and loop control signals, and for the host
// I/O processors.  The compiler bridges the semantic gap between the
// asynchronous programmer's model and the fully synchronous hardware
// with the paper's skewed computation model: it computes the minimum
// start-time skew between adjacent cells so that no receive ever
// executes before its matching send, and proves the channel queues
// never overflow.
//
// A minimal session:
//
//	prog, err := warp.Compile(src, warp.Options{})
//	out, stats, err := prog.Run(map[string][]float64{"z": z, "c": c})
//
// See the examples directory for complete programs and internal/skew
// for the timing theory.
package warp

import (
	"context"
	"io"
	"time"

	"warp/internal/driver"
	"warp/internal/interp"
	"warp/internal/obs"
	"warp/internal/prof"
	"warp/internal/sim"
	"warp/internal/skew"
	"warp/internal/telemetry"
	"warp/internal/verify"
	"warp/internal/w2"
)

// ErrLivelock marks a run aborted by the RunConfig.MaxCycles guard
// (default 1<<28 cycles).  Test for it with errors.Is.
var ErrLivelock = sim.ErrLivelock

// ErrUnverified marks a run that requested BackendFast on a program
// compiled without Options.Verify: the fast backend executes only
// proof-carrying programs and never silently degrades to the
// simulator.  Test for it with errors.Is.
var ErrUnverified = driver.ErrUnverified

// Execution backend names for RunConfig.Backend.
const (
	// BackendAuto (also the empty string) picks the fast dataflow
	// executor when the program is verified and the run requests no
	// per-cycle observability (no Recorder, no Profile), and the
	// cycle-accurate simulator otherwise.
	BackendAuto = driver.BackendAuto
	// BackendSim forces the cycle-accurate simulator.
	BackendSim = driver.BackendSim
	// BackendFast forces the verified fast executor; unverified
	// programs fail with ErrUnverified.
	BackendFast = driver.BackendFast
)

// Options control compilation.
type Options struct {
	// NoOptimize disables the local optimizer (CSE, constant folding,
	// height reduction, idempotent-operation removal).
	NoOptimize bool
	// Pipeline enables software pipelining of innermost loops.
	Pipeline bool
	// Cells overrides the array size declared by the cellprogram.
	Cells int
	// Verify runs the static microcode verifier as a final compile
	// phase: queue safety, skew coverage, register hazards and IU
	// stream consistency are proven from the microcode alone, and a
	// violation fails Compile with a *verify.Error carrying structured
	// diagnostics (one per violated invariant).
	Verify bool
	// CompileWorkers bounds the compiler's internal parallelism: the
	// independent back-end phases (skew analysis, IU and host code
	// generation, verification) and their per-channel/per-stream/
	// per-invariant work run concurrently on up to this many workers.
	// 0 defaults to GOMAXPROCS; 1 compiles serially.  The compiled
	// program is byte-identical at every setting; only compile wall
	// time varies.
	CompileWorkers int
	// Recorder, when set, receives compile-phase events during Compile
	// and per-cycle simulator events during Run/RunTraced (see
	// internal/obs).  Leave nil for the zero-overhead default.
	Recorder obs.Recorder
}

// Program is a compiled W2 module.
//
// A Program is immutable after Compile: Run and its variants build
// fresh machine state per call and only read the compiled microcode, so
// a single Program is safe for concurrent Run/RunContext/RunWith calls
// from many goroutines.  The one exception is instrumentation — the
// Recorder passed to Compile (and any passed via RunConfig) receives
// events from every concurrent run, so it must itself be
// concurrency-safe; the default nil Recorder is.
type Program struct {
	c           *driver.Compiled
	rec         obs.Recorder
	compileTime time.Duration
}

// Compile compiles W2 source text through the full pipeline: parsing,
// semantic analysis, flowgraph construction, local and global flow
// analysis, communication-cycle checking, cell code generation,
// minimum-skew and queue-occupancy analysis, IU code generation and
// host I/O program generation.
func Compile(src string, opts Options) (*Program, error) {
	start := time.Now()
	c, err := driver.Compile(src, driver.Options{
		NoOptimize:     opts.NoOptimize,
		Pipeline:       opts.Pipeline,
		Cells:          opts.Cells,
		Verify:         opts.Verify,
		CompileWorkers: opts.CompileWorkers,
		Recorder:       opts.Recorder,
	})
	if err != nil {
		return nil, err
	}
	return &Program{c: c, rec: opts.Recorder, compileTime: time.Since(start)}, nil
}

// RunStats reports a simulation run.
type RunStats struct {
	// Cycles is the total machine time until the last cell finished.
	Cycles int64
	// Backend names the executor that produced this run: "sim" for the
	// cycle-accurate simulator, "fast" for the verified dataflow
	// executor.  Both report identical Cycles and outputs for the same
	// program and inputs; the fast backend's count comes from the
	// verifier's closed-form model rather than stepping.
	Backend string
	// MaxQueue is the peak data-queue occupancy observed, derived from
	// the per-queue high-water marks in Profile.Queues.
	MaxQueue int
	// MaxQueueAt names the queue (channel and cell boundary) that
	// reached MaxQueue, e.g. "cell1.X".
	MaxQueueAt string
	// AddUtilization and MulUtilization are the fractions of
	// cell-active cycles in which the respective FPU issued an
	// operation, summed over all cells — the quantity behind the
	// paper's "all the arithmetic units are fully utilized in the
	// innermost loop" (§7).
	AddUtilization float64
	MulUtilization float64
	// Profile is the full run profile: per-cell stall attribution and
	// per-loop-depth utilization, per-queue occupancy, host
	// backpressure, and the compiler's per-phase timing.  Its
	// UtilizationReport method renders the §7-style per-cell table.
	Profile *obs.Profile
	// Source is the source-line cycle profile — every busy and stall
	// cycle of every cell attributed exactly to a W2 source line and
	// loop-nest path.  Only filled when RunConfig.Profile was set; see
	// SourceProfile for the export formats (text report, folded flame
	// stacks, pprof protobuf).
	Source *SourceProfile
	// Decision is the backend decision audit: why this backend ran,
	// what the host-calibrated cost model predicted each backend would
	// cost, and the wall time actually spent.  Always present.
	Decision *Decision
}

// Decision is the backend decision audit record attached to every run:
// the chosen backend, the reason, the cost model's predicted wall time
// for each candidate backend (from exact cycle/op counts and two
// host-calibrated constants), and the actual wall time observed.
type Decision = telemetry.Decision

// CostModel holds the host-calibrated constants behind Decision
// predictions.
type CostModel = telemetry.CostModel

// ProgressUpdate is one coarse snapshot of a running execution; see
// RunConfig.Progress.
type ProgressUpdate = obs.ProgressUpdate

// ProgressFunc receives ProgressUpdates from a running execution.
type ProgressFunc = obs.ProgressFunc

// SourceProfile is a source-line hot-spot profile of a run: exact
// per-line busy/starved/bubble cycle totals plus folded flame-graph
// stacks.  Render it with Report, WriteFolded or WritePprof (the
// latter is viewable with `go tool pprof`).
type SourceProfile = prof.SourceProfile

// SchedProfile is the compiler-introspection record: per-loop modulo
// scheduling counters (II search attempts, candidate placements,
// evictions) and per-channel skew search-space sizes.
type SchedProfile = prof.SchedProfile

// DebugMap is the compiler-emitted mapping from µinstruction addresses
// back to W2 source lines and loop-nest paths.
type DebugMap = prof.DebugMap

// RunConfig controls one execution of a compiled program.  The zero
// value is Run's behaviour: run to completion with the default livelock
// guard.
type RunConfig struct {
	// Context, when non-nil, aborts the simulation once it is cancelled
	// — the run loop polls it every few thousand cycles, so a deadline
	// or client disconnect stops a runaway simulation promptly instead
	// of waiting out the MaxCycles guard.  The returned error wraps
	// ctx.Err().
	Context context.Context
	// MaxCycles overrides the runaway-simulation guard (0 keeps the
	// default of 1<<28 cycles).  On overrun the error wraps ErrLivelock.
	MaxCycles int64
	// Profile enables exact per-µPC cycle attribution in the simulator
	// and fills RunStats.Source with the source-line profile (and, for
	// RunPartitioned, FabricStats.Source with the per-tile aggregate).
	// The attribution is exact, not sampled: per cell, the per-line
	// totals sum to busy+starved+bubble.  Off by default; when off the
	// simulator's only extra cost is a nil check per cycle per cell.
	Profile bool
	// Backend selects the execution backend: BackendAuto (or "") picks
	// the fast dataflow executor for verified programs when no per-cycle
	// observability is requested and the simulator otherwise; BackendSim
	// forces cycle-accurate simulation; BackendFast demands the fast
	// executor and fails with ErrUnverified when the program was
	// compiled without Options.Verify.
	Backend string
	// Progress, when non-nil, receives coarse position updates while
	// the run executes — cycles retired (with the modeled total for a
	// percent display) for single runs, tile completions for
	// RunPartitioned — plus a terminal update.  The callback runs on
	// the executor's goroutine at a bounded stride and must not block;
	// nil disables progress reporting at zero cost.
	Progress ProgressFunc

	// The remaining fields configure RunPartitioned only; the
	// single-array Run variants ignore them.

	// Arrays is how many simulated array instances RunPartitioned farms
	// tiles across concurrently (minimum 1).
	Arrays int
	// TileMemBudget overrides the per-cell data-memory budget in words
	// that the partitioner sizes tiles against (0 = the hardware's
	// 4K-word cell memory).
	TileMemBudget int
	// TileDeadline bounds each tile attempt; a tile that overruns it is
	// retried like a livelock (0 = no per-tile deadline).
	TileDeadline time.Duration
	// TileRetries is how many additional attempts a retryable tile
	// failure (livelock, tile deadline) gets before RunPartitioned
	// fails the whole job with a *TileError.
	TileRetries int
}

// Run executes the compiled program on the simulated Warp machine with
// the given input arrays (keyed by "in" parameter name) and returns the
// output arrays (keyed by "out" parameter name).
func (p *Program) Run(inputs map[string][]float64) (map[string][]float64, *RunStats, error) {
	return p.runWith(inputs, RunConfig{}, p.rec)
}

// RunContext runs like Run but aborts when ctx is cancelled (a deadline
// or a client disconnect), returning an error that wraps ctx.Err().
func (p *Program) RunContext(ctx context.Context, inputs map[string][]float64) (map[string][]float64, *RunStats, error) {
	return p.runWith(inputs, RunConfig{Context: ctx}, p.rec)
}

// RunWith runs under full run-time configuration: cancellation context
// and livelock guard.
func (p *Program) RunWith(cfg RunConfig, inputs map[string][]float64) (map[string][]float64, *RunStats, error) {
	return p.runWith(inputs, cfg, p.rec)
}

// RunTraced runs like Run but additionally streams a Chrome trace-event
// JSON document to trace (one track per cell, functional unit and
// queue; load the file in Perfetto or chrome://tracing).  The compiled
// program's phase timings appear on a separate "compiler" track.
func (p *Program) RunTraced(inputs map[string][]float64, trace io.Writer) (map[string][]float64, *RunStats, error) {
	return p.RunTracedWith(RunConfig{}, inputs, trace)
}

// RunTracedWith runs like RunTraced under the given run configuration.
func (p *Program) RunTracedWith(cfg RunConfig, inputs map[string][]float64, trace io.Writer) (map[string][]float64, *RunStats, error) {
	tracer := obs.NewChromeTracer(trace)
	for _, ph := range p.c.Phases {
		tracer.Phase(ph.Name, ph.Seconds, ph.Size, ph.Note)
	}
	out, rs, err := p.runWith(inputs, cfg, obs.Multi(p.rec, tracer))
	if cerr := tracer.Close(); err == nil && cerr != nil {
		return nil, nil, cerr
	}
	return out, rs, err
}

func (p *Program) runWith(inputs map[string][]float64, cfg RunConfig, rec obs.Recorder) (map[string][]float64, *RunStats, error) {
	out, stats, err := driver.RunWith(p.c, inputs, driver.RunOptions{
		Ctx:       cfg.Context,
		Recorder:  rec,
		MaxCycles: cfg.MaxCycles,
		Profile:   cfg.Profile,
		Backend:   cfg.Backend,
		Progress:  cfg.Progress,
	})
	if err != nil {
		return nil, nil, err
	}
	rs := &RunStats{
		Cycles:     stats.Cycles,
		Backend:    stats.Backend,
		MaxQueue:   stats.MaxQueue,
		MaxQueueAt: stats.MaxQueueAt,
		Profile:    stats.Obs,
		Decision:   stats.Decision,
	}
	if stats.CellActive > 0 {
		rs.AddUtilization = float64(stats.AddOps) / float64(stats.CellActive)
		rs.MulUtilization = float64(stats.MulOps) / float64(stats.CellActive)
	}
	if cfg.Profile && stats.Obs != nil {
		rs.Source = prof.BuildSource(p.c.Debug, stats.Obs.PC, stats.Cycles)
	}
	return out, rs, nil
}

// SourceProfile compiles-and-runs in one call: it executes the program
// with profiling enabled and returns the source-line cycle profile.
func (p *Program) SourceProfile(inputs map[string][]float64) (*SourceProfile, error) {
	_, rs, err := p.RunWith(RunConfig{Profile: true}, inputs)
	if err != nil {
		return nil, err
	}
	return rs.Source, nil
}

// DebugMap returns the compiler's µPC → source mapping for this
// program.
func (p *Program) DebugMap() *DebugMap { return p.c.Debug }

// Sched returns the compiler-introspection record of this program's
// compilation: modulo-scheduling and skew-search counters.
func (p *Program) Sched() *SchedProfile { return p.c.Sched }

// SchedReport renders the scheduler-introspection record as text.
func (p *Program) SchedReport() string { return p.c.Sched.Report() }

// Interpret executes the program under the reference interpreter (the
// programmer's model semantics, no compilation), for validating
// simulated results.
func (p *Program) Interpret(inputs map[string][]float64) (map[string][]float64, error) {
	info, err := p.c.FullInfo()
	if err != nil {
		return nil, err
	}
	return interp.Run(info, inputs)
}

// InterpretContext interprets like Interpret but aborts once ctx is
// cancelled, so oracle runs on large problems respect the same
// deadlines as the simulator.
func (p *Program) InterpretContext(ctx context.Context, inputs map[string][]float64) (map[string][]float64, error) {
	info, err := p.c.FullInfo()
	if err != nil {
		return nil, err
	}
	return interp.RunContext(ctx, info, inputs)
}

// Metrics are the per-program compiler metrics of the paper's
// Table 7-1, plus the skew analysis results.
type Metrics struct {
	Name        string
	W2Lines     int
	CellInstrs  int // cell µcode length (static microinstructions)
	IUInstrs    int // IU µcode length
	CompileTime time.Duration

	Cells      int
	Skew       int64 // applied inter-cell skew in cycles
	CellCycles int64 // one cell's total execution time
	QueueOccX  int64 // proven peak occupancy, channel X
	QueueOccY  int64
	IUAddrRegs int
	IUTable    int // pre-stored table entries
	OptCount   int // local-optimizer transformations applied
	Pipelined  int // loops software pipelining transformed
	// PipelineBackoff: pipelining was requested but rolled back because
	// the IU could not feed the overlapped schedule.  BackoffReason is
	// the error that forced the rollback.
	PipelineBackoff bool
	BackoffReason   string
}

// Metrics returns the compiled program's metrics.
func (p *Program) Metrics() Metrics {
	return Metrics{
		Name:            p.c.Module.Name,
		W2Lines:         p.c.W2Lines,
		CellInstrs:      p.c.Cell.NumInstrs(),
		IUInstrs:        p.c.IU.NumInstrs(),
		CompileTime:     p.compileTime,
		Cells:           p.c.Cells,
		Skew:            p.c.Skew,
		CellCycles:      p.c.Cell.Cycles(),
		QueueOccX:       p.c.QueueOcc[w2.ChanX],
		QueueOccY:       p.c.QueueOcc[w2.ChanY],
		IUAddrRegs:      p.c.IUGen.AddrRegs,
		IUTable:         p.c.IUGen.TableEntries,
		OptCount:        p.c.OptStats.Total(),
		Pipelined:       p.c.CellGen.PipelinedLoops,
		PipelineBackoff: p.c.PipelineBackoff,
		BackoffReason:   p.c.BackoffReason,
	}
}

// ParamInfo describes one module parameter.
type ParamInfo struct {
	Name string
	Out  bool
	Size int // number of scalar elements
}

// Params returns the module's parameters in declaration order.
func (p *Program) Params() []ParamInfo {
	var out []ParamInfo
	for _, sym := range p.c.Info.HostSyms {
		out = append(out, ParamInfo{Name: sym.Name, Out: sym.Out, Size: sym.Type.Size()})
	}
	return out
}

// Phases returns the compiler's per-phase wall-clock timing and size
// records, in execution order; a "pipeline-backoff" entry carries the
// reason software pipelining was rolled back.
func (p *Program) Phases() []obs.PhaseStat { return p.c.Phases }

// PhaseReport renders the per-phase timing table as text.
func (p *Program) PhaseReport() string { return obs.PhaseReport(p.c.Phases) }

// CellListing renders the generated cell microcode.
func (p *Program) CellListing() string { return p.c.Cell.Listing() }

// IUListing renders the generated IU microcode.
func (p *Program) IUListing() string { return p.c.IU.Listing() }

// Verified returns the static verifier's report — the proven peak
// queue occupancies and the number of propositions discharged — or nil
// when Options.Verify was not set.
func (p *Program) Verified() *verify.Report { return p.c.Verified }

// Skew returns the applied inter-cell skew in cycles.
func (p *Program) Skew() int64 { return p.c.Skew }

// Cells returns the array size.
func (p *Program) Cells() int { return p.c.Cells }

// ChannelTiming returns the timed I/O program of one channel, the
// input to the skew analysis (see internal/skew).
func (p *Program) ChannelTiming(ch rune) *skew.Prog {
	switch ch {
	case 'X', 'x':
		return p.c.Timing[w2.ChanX]
	case 'Y', 'y':
		return p.c.Timing[w2.ChanY]
	}
	return nil
}
